"""Multiprocessing worker pool for the in-memory sharded closure.

The thread pool of :mod:`repro.datalog.sharded` keeps the in-memory driver's
shard waves GIL-bound: Python-level join enumeration never overlaps on real
cores.  This module provides the opt-in alternative
(``EvalContext(process_pool=True)`` / ``REPRO_PROCESS_POOL=1``): a
:class:`concurrent.futures.ProcessPoolExecutor` whose workers each hold a
**pickled replica** of the database being evaluated and run the exact same
per-shard job functions (:func:`~repro.datalog.sharded._full_rule_shard`,
:func:`~repro.datalog.seminaive.seeded_rank_assignments`) against it.

Protocol
--------

* At pool creation the parent pickles ``(db.clone(), rules)`` once; every
  worker process unpickles it in its initializer and builds a private
  :class:`~repro.datalog.planner.JoinPlanner` over the replica.  Clones drop
  observers and candidate hooks, so the payload is picklable and workers
  never deliver duplicate notifications.
* The closure mutates its database only through round-end
  ``mark_deleted`` batches.  The parent accumulates those batches as a
  *history* list and ships it with every wave; each worker replays the
  suffix it has not applied yet, so replicas converge to the parent's state
  no matter how the executor distributes tasks across processes.
* A wave ships ``(history, frontier, jobs)`` where each job is a picklable
  descriptor — ``("full", rule_index, first_atom, seed_facts)`` or
  ``("rank", rule_index, rank, seed_index, seed_facts)`` — and returns one
  assignment list per job, in job order.  The parent sorts each job's
  results into the canonical replay order and records them in job order,
  exactly as it does for thread-pool results, so the closure, the
  assignment/observer streams and the tids are **byte-identical** to the
  thread-pool execution at the same shard configuration.

Shipping the cumulative history means per-wave pickling cost grows with the
closure (see the README's process-pool caveats); the pool pays off when the
per-round join work dominates, which is exactly when sharding is worth
anything at all.  Workers use the ``fork`` start method where available —
replicas are cheap to inherit and no re-import machinery runs — falling back
to the platform default elsewhere.
"""

from __future__ import annotations

import multiprocessing
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor, wait as futures_wait
from typing import Dict, List, Sequence

#: Per-process worker state, populated by :func:`_init_worker`.
_worker_state: Dict[str, object] = {}


def _init_worker(payload: bytes) -> None:
    """Process-pool initializer: adopt the database replica and rules."""
    from repro.datalog.planner import JoinPlanner

    db, rules = pickle.loads(payload)
    _worker_state["db"] = db
    _worker_state["rules"] = rules
    _worker_state["planner"] = JoinPlanner(db)
    _worker_state["applied"] = 0


def _run_jobs(history: Sequence[list], frontier_payload: tuple, jobs: Sequence[tuple]):
    """Evaluate one group of shard-job descriptors against the replica."""
    from repro.datalog.seminaive import seeded_rank_assignments
    from repro.datalog.sharded import _full_rule_shard

    db = _worker_state["db"]
    rules = _worker_state["rules"]
    planner = _worker_state["planner"]
    applied = _worker_state["applied"]
    for batch in history[applied:]:
        for item in batch:
            db.mark_deleted(item)
        planner.begin_round()
    _worker_state["applied"] = len(history)
    frontier = {relation: set(items) for relation, items in frontier_payload}
    results = []
    for job in jobs:
        if job[0] == "full":
            _kind, rule_index, first, seeds = job
            results.append(
                _full_rule_shard(db, planner, rules[rule_index], first, seeds),
            )
        else:
            _kind, rule_index, rank, seed_index, seeds = job
            results.append(
                seeded_rank_assignments(
                    db, rules[rule_index], frontier, planner, rank, seed_index, seeds,
                ),
            )
    return results


class ProcessShardPool:
    """One closure's process pool; see the module docstring for the protocol."""

    __slots__ = ("_executor", "_workers")

    def __init__(self, executor: ProcessPoolExecutor, workers: int) -> None:
        self._executor = executor
        self._workers = workers

    @classmethod
    def create(
        cls, db, rules, workers: int,
    ) -> "ProcessShardPool | None":
        """Build a pool over a replica of ``db``, or None when unavailable.

        Failure (a backend whose clone cannot pickle, a platform without
        process pools) degrades to the thread pool with a warning — the
        closure's results are identical either way.
        """
        try:
            payload = pickle.dumps(
                (db.clone(), list(rules)), protocol=pickle.HIGHEST_PROTOCOL,
            )
            try:
                mp_context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                mp_context = None
            executor = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=mp_context,
                initializer=_init_worker,
                initargs=(payload,),
            )
        except Exception as error:
            warnings.warn(
                f"process pool unavailable ({error!r}); "
                "falling back to the thread pool",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        return cls(executor, workers)

    def run_wave(
        self,
        history: Sequence[list],
        frontier_payload: tuple,
        jobs: Sequence[tuple],
    ) -> List[list]:
        """Run one wave of job descriptors; per-job assignment lists in job order.

        Jobs are dealt round-robin into at most ``workers`` groups (one task
        each, mirroring :func:`~repro.datalog.sharded._run_wave`'s slicing);
        a failing group cancels and drains its siblings before the error
        propagates, so no worker is left evaluating against a torn wave.
        """
        groups = [
            list(range(start, len(jobs), self._workers))
            for start in range(min(self._workers, len(jobs)))
        ]
        history = list(history)
        futures = [
            self._executor.submit(
                _run_jobs, history, frontier_payload, [jobs[i] for i in chunk],
            )
            for chunk in groups
        ]
        results: List[list] = [None] * len(jobs)
        try:
            for chunk, future in zip(groups, futures):
                for index, result in zip(chunk, future.result()):
                    results[index] = result
        except BaseException:
            for future in futures:
                future.cancel()
            futures_wait(futures)
            raise
        return results

    def close(self) -> None:
        """Shut the workers down (no wait: the closure already merged)."""
        self._executor.shutdown(wait=False, cancel_futures=True)
