"""Rule evaluation: enumerating assignments of rule bodies to database facts.

An *assignment* ``α`` (Section 2 of the paper) maps every body atom of a rule
to a fact of the database, consistently with variable bindings, such that all
comparison atoms hold.  ``α(head)`` is then the delta fact the rule derives.

The evaluator works over any :class:`~repro.storage.database.BaseDatabase`:

* base atoms ``R(Ȳ)`` match the **active** extent of ``R``;
* delta atoms ``ΔR(Ȳ)`` match the **delta** extent of ``R`` — except in
  *hypothetical mode* (used by Algorithm 1 / independent semantics), where a
  delta atom may match any tuple of the original database, modelling "this
  tuple could have been deleted";
* when the database is a :class:`~repro.storage.sqlite_backend.SQLiteDatabase`
  the body is compiled to a SQL join (see :mod:`repro.datalog.sql_compiler`)
  instead of being evaluated tuple-at-a-time.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Iterator, List, Sequence

from repro.datalog.ast import Atom, Comparison, Constant, Program, Rule, Variable
from repro.exceptions import EvaluationError, UnknownEngineError
from repro.storage.database import BaseDatabase
from repro.storage.facts import Fact
from repro.storage.sqlite_backend import SQLiteDatabase

#: Engine names accepted by :func:`derive_closure` and the four semantics.
ENGINE_AUTO = "auto"
ENGINE_NAIVE = "naive"
ENGINE_SEMI_NAIVE = "semi-naive"
ENGINE_SHARDED = "sharded"
ENGINES = (ENGINE_NAIVE, ENGINE_SEMI_NAIVE, ENGINE_SHARDED)
ENGINE_CHOICES = (ENGINE_AUTO, *ENGINES)


def validate_engine(engine: str | None) -> None:
    """Reject unknown ``engine=`` knob values with a uniform :class:`ValueError`.

    Accepts None (treated as ``"auto"``) and the names in :data:`ENGINE_CHOICES`;
    anything else raises :class:`~repro.exceptions.UnknownEngineError`, which
    every fixpoint consumer (``derive_closure``, the four semantics, the
    provenance builders and :class:`~repro.core.repair.RepairEngine`) surfaces
    unchanged.
    """
    if engine is not None and engine not in ENGINE_CHOICES:
        raise UnknownEngineError(engine, ENGINE_CHOICES)


def resolve_engine(
    db: BaseDatabase, engine: str | None, context=None,
) -> str:
    """Resolve the ``engine=`` knob to a concrete engine name.

    ``"auto"`` (the default everywhere) selects the semi-naive engine on every
    backend: the delta-driven in-memory engine for :class:`Database` instances
    and the SQL-level frontier-table engine
    (:mod:`repro.datalog.sql_seminaive`) for SQLite-backed ones — unless
    sharding is wanted, in which case it resolves to the sharded engine
    (:mod:`repro.datalog.sharded`).  The heuristic is
    :meth:`~repro.datalog.context.EvalContext.wants_sharding`: an explicit
    ``shards=`` / ``workers=`` knob on the ``context`` or the
    ``REPRO_SHARDS`` environment variable always opts in (checked even
    without a context, so a CI job can flip a whole run); with every knob
    unset, ``os.cpu_count()`` decides — multi-core machines default to the
    sharded engine (dynamic shard collapse makes it never slower than
    semi-naive), single-core machines stay on semi-naive.  ``"naive"``
    forces the re-evaluate-everything loop, the differential-testing oracle.
    """
    validate_engine(engine)
    if engine is None or engine == ENGINE_AUTO:
        if context is not None:
            return (
                ENGINE_SHARDED
                if context.wants_sharding()
                else ENGINE_SEMI_NAIVE
            )
        from repro.datalog.context import env_shards

        if env_shards() is not None or (os.cpu_count() or 1) > 1:
            return ENGINE_SHARDED
        return ENGINE_SEMI_NAIVE
    return engine


@dataclass(frozen=True)
class Assignment:
    """One satisfying assignment of a rule body.

    Attributes
    ----------
    rule:
        The rule being satisfied.
    bindings:
        Mapping from variable name to the value it was bound to.
    used:
        The ``(atom, fact)`` pairs, one per relational body atom, in the
        rule's body order.
    derived:
        The fact ``α(head)`` — the tuple the rule asks to delete.  It is always
        a *base* fact (of the head's relation); delta membership is tracked by
        the database, not by the fact object.
    """

    rule: Rule
    bindings: tuple[tuple[str, Any], ...]
    used: tuple[tuple[Atom, Fact], ...]
    derived: Fact

    @property
    def binding_map(self) -> Dict[str, Any]:
        """The bindings as a dictionary."""
        return dict(self.bindings)

    def base_facts(self) -> tuple[Fact, ...]:
        """Facts matched by the non-delta (positive) body atoms."""
        return tuple(item for atom, item in self.used if not atom.is_delta)

    def delta_facts(self) -> tuple[Fact, ...]:
        """Facts matched by the delta body atoms (as their base counterparts)."""
        return tuple(item for atom, item in self.used if atom.is_delta)

    def all_facts(self) -> tuple[Fact, ...]:
        """Every fact the assignment touches, in body order."""
        return tuple(item for _, item in self.used)

    def signature(self) -> tuple:
        """A hashable signature identifying this assignment up to rule + facts.

        The rule participates by full identity (head, body, comparisons and
        name), not by display name: distinct unnamed rules with the same head
        relation would otherwise collide, and the engines deduplicate
        assignments by this signature.
        """
        return (
            self.rule,
            tuple((atom.relation, atom.is_delta, item) for atom, item in self.used),
        )

    def __str__(self) -> str:
        facts = ", ".join(
            ("Δ" if atom.is_delta else "") + item.label() for atom, item in self.used
        )
        return f"{self.rule.display_name()}: [{facts}] ⟹ Δ{self.derived.label()}"


def ground_head(rule: Rule, bindings: Dict[str, Any]) -> Fact:
    """Instantiate ``α(head)`` from the rule head and a complete binding map."""
    values = []
    for term in rule.head.terms:
        if isinstance(term, Variable):
            if term.name not in bindings:
                raise EvaluationError(
                    f"rule {rule.display_name()}: head variable {term.name!r} is unbound",
                )
            values.append(bindings[term.name])
        else:
            assert isinstance(term, Constant)
            values.append(term.value)
    return Fact(rule.head.relation, tuple(values))


def _bound_positions(atom: Atom, bindings: Dict[str, Any]) -> Dict[int, Any]:
    """Positions of ``atom`` whose value is fixed by constants or current bindings."""
    fixed: Dict[int, Any] = {}
    for position, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            fixed[position] = term.value
        elif isinstance(term, Variable) and term.name in bindings:
            fixed[position] = bindings[term.name]
    return fixed


def _match_atom(
    atom: Atom, item: Fact, bindings: Dict[str, Any]
) -> Dict[str, Any] | None:
    """Try to unify ``atom`` with ``item`` under ``bindings``.

    Returns the extended bindings on success, None on failure.  Handles
    repeated variables within the atom and constants at any position.
    """
    extended = dict(bindings)
    for term, value in zip(atom.terms, item.values):
        if isinstance(term, Constant):
            if term.value != value:
                return None
        else:
            assert isinstance(term, Variable)
            if term.name in extended:
                if extended[term.name] != value:
                    return None
            else:
                extended[term.name] = value
    return extended


def _candidate_facts(
    db: BaseDatabase,
    atom: Atom,
    bindings: Dict[str, Any],
    hypothetical_deltas: bool,
) -> Iterator[Fact]:
    """Facts the ``atom`` may match given the current bindings."""
    fixed = _bound_positions(atom, bindings)
    if atom.is_delta and hypothetical_deltas:
        # Independent semantics: a delta atom may match the delta counterpart of
        # any tuple of the database — both still-active tuples (hypothetically
        # deleted) and tuples already recorded as deleted.  The storage layer
        # deduplicates the two extents (via index membership tests when the
        # engine supports it) so no per-expansion ``seen`` set is built here.
        return db.hypothetical_candidates(atom.relation, fixed)
    return db.candidates(atom.relation, fixed, delta=atom.is_delta)


#: Signature of per-atom candidate providers used by the planned search:
#: ``(body_index, atom, fixed_positions) -> facts``.
CandidateFn = Callable[[int, Atom, Dict[int, Any]], Iterable[Fact]]


def default_candidates(db: BaseDatabase, hypothetical_deltas: bool) -> CandidateFn:
    """The plain candidate provider: active extent for base atoms, delta (or
    hypothetical) extent for delta atoms."""

    def candidates_for(index: int, atom: Atom, fixed: Dict[int, Any]) -> Iterable[Fact]:
        if atom.is_delta and hypothetical_deltas:
            return db.hypothetical_candidates(atom.relation, fixed)
        return db.candidates(atom.relation, fixed, delta=atom.is_delta)

    return candidates_for


def _finalize(
    rule: Rule,
    body: Sequence[Atom],
    comparisons: Sequence[Comparison],
    bindings: Dict[str, Any],
    used: List[tuple[int, Fact]],
    checked: set[int],
    results: List[Assignment],
) -> None:
    """Build an :class:`Assignment` from a complete match, in body order."""
    if len(checked) != len(comparisons):
        unchecked = [
            str(comparisons[i]) for i in range(len(comparisons)) if i not in checked
        ]
        raise EvaluationError(
            f"rule {rule.display_name()}: comparisons with unbound variables: "
            + ", ".join(unchecked),
        )
    derived = ground_head(rule, bindings)
    # ``used`` carries body indices, so restoring body order is a single
    # placement pass (no quadratic first-unconsumed-pair scan).
    pairs: List[tuple[Atom, Fact] | None] = [None] * len(body)
    for index, item in used:
        pairs[index] = (body[index], item)
    results.append(
        Assignment(
            rule=rule,
            bindings=tuple(sorted(bindings.items(), key=lambda kv: kv[0])),
            used=tuple(pairs),  # type: ignore[arg-type]
            derived=derived,
        ),
    )


def planned_search(
    rule: Rule,
    order: Sequence[int],
    position: int,
    bindings: Dict[str, Any],
    used: List[tuple[int, Fact]],
    checked: set[int],
    results: List[Assignment],
    candidates_for: CandidateFn,
) -> None:
    """Depth-first join along a static atom ``order`` (a planner product).

    ``used`` holds ``(body_index, fact)`` pairs for the prefix already matched
    (e.g. the semi-naive frontier seed); ``position`` indexes into ``order``.
    """
    body = rule.body
    comparisons = rule.comparisons
    if not _check_ready_comparisons(comparisons, bindings, checked):
        return
    if position == len(order):
        _finalize(rule, body, comparisons, bindings, used, checked, results)
        return
    index = order[position]
    atom = body[index]
    fixed = _bound_positions(atom, bindings)
    for item in candidates_for(index, atom, fixed):
        extended = _match_atom(atom, item, bindings)
        if extended is None:
            continue
        used.append((index, item))
        planned_search(
            rule, order, position + 1, extended, used, set(checked), results,
            candidates_for,
        )
        used.pop()


def _check_ready_comparisons(
    comparisons: Sequence[Comparison], bindings: Dict[str, Any], checked: set[int],
) -> bool:
    """Evaluate every not-yet-checked comparison whose variables are all bound.

    Mutates ``checked`` with the indexes that became ground.  Returns False as
    soon as one ground comparison fails.
    """
    for index, comparison in enumerate(comparisons):
        if index in checked:
            continue
        if comparison.is_ground(bindings):
            checked.add(index)
            if not comparison.evaluate(bindings):
                return False
    return True


def find_assignments(
    db: BaseDatabase,
    rule: Rule,
    hypothetical_deltas: bool = False,
    use_sql: bool | None = None,
    planner=None,
) -> List[Assignment]:
    """Enumerate every satisfying assignment of ``rule`` over ``db``.

    Parameters
    ----------
    db:
        The database state to evaluate against.
    rule:
        The (delta) rule whose body is matched.
    hypothetical_deltas:
        When True, delta atoms may match any tuple of the database (its
        hypothetical deletion) rather than only the recorded deletions.  This
        is the mode Algorithm 1 uses to build the full Boolean provenance.
    use_sql:
        Force (True) or forbid (False) the SQL evaluation path.  By default the
        SQL path is used exactly when ``db`` is a SQLite-backed engine.
    planner:
        A :class:`~repro.datalog.planner.JoinPlanner` providing a static,
        cached join order for the rule.  Without one, the join order is
        re-derived at every recursion step from the currently bound positions
        (the naive oracle behaviour).  Plans the planner classified as
        ``kind="wcoj"`` route through the generic-join driver
        (:mod:`repro.datalog.wcoj`) when eligible — in-memory engine,
        concrete deltas, no candidate observers — and fall back to the
        binary order otherwise.
    """
    if use_sql is None:
        use_sql = isinstance(db, SQLiteDatabase)
    if use_sql and isinstance(db, SQLiteDatabase):
        from repro.datalog.sql_compiler import find_assignments_sql

        return find_assignments_sql(db, rule, hypothetical_deltas=hypothetical_deltas)

    results: List[Assignment] = []

    if planner is not None:
        plan = planner.plan(rule, seed=None, hypothetical=hypothetical_deltas)
        if plan.kind != "binary":
            from repro.datalog.wcoj import wcoj_assignments, wcoj_eligible

            if wcoj_eligible(db, plan, hypothetical=hypothetical_deltas):
                return wcoj_assignments(db, rule, plan, stats=planner.stats)
        planned_search(
            rule, plan.order, 0, {}, [], set(), results,
            default_candidates(db, hypothetical_deltas),
        )
        return results

    body = list(rule.body)
    comparisons = list(rule.comparisons)

    def extend(
        bindings: Dict[str, Any],
        used: List[tuple[int, Fact]],
        remaining: List[int],
        checked: set[int],
    ) -> None:
        if not _check_ready_comparisons(comparisons, bindings, checked):
            return
        if not remaining:
            _finalize(rule, body, comparisons, bindings, used, checked, results)
            return
        # Choose the most constrained remaining atom (most bound positions) to
        # keep intermediate results small; ties keep body order for determinism.
        best_position = 0
        best_bound = -1
        for position, index in enumerate(remaining):
            bound = len(_bound_positions(body[index], bindings))
            if bound > best_bound:
                best_position, best_bound = position, bound
        index = remaining[best_position]
        atom = body[index]
        rest = remaining[:best_position] + remaining[best_position + 1 :]
        for item in _candidate_facts(db, atom, bindings, hypothetical_deltas):
            extended = _match_atom(atom, item, bindings)
            if extended is None:
                continue
            extend(extended, used + [(index, item)], rest, set(checked))

    extend({}, [], list(range(len(body))), set())
    return results


def find_all_assignments(
    db: BaseDatabase,
    program: Program | Iterable[Rule],
    hypothetical_deltas: bool = False,
) -> List[Assignment]:
    """All assignments of every rule of ``program`` over ``db``."""
    assignments: List[Assignment] = []
    for rule in program:
        assignments.extend(
            find_assignments(db, rule, hypothetical_deltas=hypothetical_deltas),
        )
    return assignments


def is_rule_satisfied(db: BaseDatabase, rule: Rule) -> bool:
    """True when ``rule`` has at least one satisfying assignment over ``db``."""
    return bool(find_assignments(db, rule))


@dataclass
class ClosureResult:
    """The outcome of a fixpoint closure run.

    Attributes
    ----------
    assignments:
        Every distinct assignment observed (by used-fact signature).
    rounds:
        Number of evaluation rounds until the fixpoint.
    engine:
        The concrete engine that ran (``"naive"`` or ``"semi-naive"``).
    """

    assignments: List[Assignment]
    rounds: int
    engine: str


def run_closure(
    db: BaseDatabase,
    program: Program | Iterable[Rule],
    on_assignment=None,
    max_rounds: int | None = None,
    engine: str = ENGINE_AUTO,
    collect_assignments: bool = True,
    context=None,
) -> ClosureResult:
    """End-semantics style closure: derive all delta facts without deleting.

    Records each newly derived delta fact with
    :meth:`BaseDatabase.mark_deleted` (the active extents are untouched) until
    a fixpoint is reached.  ``on_assignment`` (if given) is called exactly once
    with every *new* assignment — the provenance tracker uses this hook.
    Observers registered on a shared
    :class:`~repro.datalog.context.EvalContext` (``context=``) receive the
    same exactly-once stream; the context also carries the cross-run plan and
    compiled-variant caches.  ``collect_assignments=False`` suppresses the
    returned assignment list, and when *nothing* observes (no hook, no
    context observer, no collection) the SQLite semi-naive driver takes its
    install-only fast path: one join per rule variant per round, zero
    assignment rows materialised in Python.

    ``engine`` selects the evaluation strategy:

    * ``"semi-naive"`` (the ``"auto"`` default on every backend) — after a
      first full round, rules are only re-matched through assignments that use
      at least one delta fact derived in the previous round.  In-memory
      databases seed from the storage layer's frontier and join outward along
      cached per-rule plans (:mod:`repro.datalog.seminaive`); SQLite-backed
      databases run delta-rewritten SQL variants against generation-stamped
      frontier tables, with fact installation kept inside SQLite
      (:mod:`repro.datalog.sql_seminaive`);
    * ``"sharded"`` — the same semi-naive rounds with every round's frontier
      hash-partitioned across a worker pool (:mod:`repro.datalog.sharded`);
      shard and worker counts come from the context's ``shards=`` /
      ``workers=`` knobs (or ``REPRO_SHARDS``).  ``"auto"`` resolves here
      when the context opts in via those knobs;
    * ``"naive"`` — every round re-evaluates every rule against the whole
      database and discards already-seen assignments by signature.  Kept as
      the differential-testing oracle.
    """
    resolved = resolve_engine(db, engine, context)
    if resolved == ENGINE_SHARDED:
        from repro.datalog.sharded import sharded_closure

        return sharded_closure(
            db,
            program,
            on_assignment=on_assignment,
            max_rounds=max_rounds,
            collect_assignments=collect_assignments,
            context=context,
        )
    if resolved == ENGINE_SEMI_NAIVE:
        if isinstance(db, SQLiteDatabase):
            from repro.datalog.sql_seminaive import sql_semi_naive_closure

            return sql_semi_naive_closure(
                db,
                program,
                on_assignment=on_assignment,
                max_rounds=max_rounds,
                collect_assignments=collect_assignments,
                context=context,
            )
        from repro.datalog.seminaive import semi_naive_closure

        return semi_naive_closure(
            db,
            program,
            on_assignment=on_assignment,
            max_rounds=max_rounds,
            collect_assignments=collect_assignments,
            context=context,
        )

    rules = list(program)
    all_assignments: list[Assignment] = []
    seen_signatures: set[tuple] = set()
    rounds = 0
    while True:
        rounds += 1
        if max_rounds is not None and rounds > max_rounds:
            raise EvaluationError(
                f"closure did not converge within {max_rounds} rounds",
            )
        new_delta = False
        for rule in rules:
            for assignment in find_assignments(db, rule):
                signature = assignment.signature()
                if signature in seen_signatures:
                    continue
                seen_signatures.add(signature)
                if collect_assignments:
                    all_assignments.append(assignment)
                if on_assignment is not None:
                    on_assignment(assignment)
                if context is not None:
                    context.notify(assignment)
                if db.mark_deleted(assignment.derived):
                    new_delta = True
        if not new_delta:
            break
    return ClosureResult(all_assignments, rounds, ENGINE_NAIVE)


def derive_closure(
    db: BaseDatabase,
    program: Program | Iterable[Rule],
    on_assignment=None,
    max_rounds: int | None = None,
    engine: str = ENGINE_AUTO,
) -> list[Assignment]:
    """Backwards-compatible wrapper around :func:`run_closure`.

    Returns only the assignment list; use :func:`run_closure` when the round
    count or the resolved engine name is needed.
    """
    return run_closure(
        db, program, on_assignment=on_assignment, max_rounds=max_rounds, engine=engine,
    ).assignments
