"""Delta programs: validation and helpers specific to the repair framework.

A *delta rule* (Definition 3.1) has the form::

    ΔR_i(X) :- R_i(X), Q_1(Y_1), ..., Q_l(Y_l)

where each ``Q_j`` is a base or delta relation.  The head's term vector ``X``
must literally re-appear in a body atom over ``R_i`` — this "guard atom"
guarantees that only existing tuples are deleted.

:class:`DeltaProgram` wraps a plain datalog :class:`Program`, checks these
conditions (and, optionally, schema conformance and safety), and provides the
two initialisation mechanisms of Section 3.6: starting from an unstable
database, or injecting *deletion requests* (the paper's rule (0)) that seed the
deletion process with specific tuples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.datalog.ast import Atom, Constant, Program, Rule, Variable
from repro.datalog.parser import parse_program
from repro.exceptions import ProgramValidationError, RuleValidationError
from repro.storage.facts import Fact
from repro.storage.schema import Schema


def validate_delta_rule(rule: Rule, require_guard: bool = True) -> None:
    """Check that ``rule`` is a well-formed delta rule.

    Raises :class:`RuleValidationError` when:

    * the head is not a delta atom,
    * the rule is unsafe (head variables not bound by the body),
    * ``require_guard`` is set and the body has no guard atom ``R(X)``
      matching the head ``ΔR(X)``.
    """
    if not rule.head.is_delta:
        raise RuleValidationError(
            f"rule {rule.display_name()}: the head must be a delta atom, got {rule.head}",
        )
    if not rule.is_safe():
        raise RuleValidationError(
            f"rule {rule.display_name()}: unsafe rule — every head variable must "
            "appear in the body",
        )
    if require_guard and rule.guard_atom() is None:
        raise RuleValidationError(
            f"rule {rule.display_name()}: the body must contain the guard atom "
            f"{rule.head.relation}({', '.join(str(t) for t in rule.head.terms)}) "
            "(Definition 3.1)",
        )


def deletion_request_rule(item: Fact, name: str | None = None) -> Rule:
    """Build the paper's rule (0): ``ΔR(c̄) :- R(c̄)`` for a specific tuple.

    This is how a repair is *initialised* when the database itself is stable
    but the user wants to delete a particular tuple (Section 3.6): the rule is
    satisfiable exactly as long as the tuple is still present, so every
    semantics will delete it and then cascade through the other rules.
    """
    constants = tuple(Constant(value) for value in item.values)
    head = Atom(item.relation, constants, is_delta=True)
    guard = Atom(item.relation, constants, is_delta=False)
    return Rule(head, (guard,), name=name or f"request_{item.relation}")


def selection_request_rule(
    relation: str,
    arity: int,
    position: int,
    op: str,
    value: object,
    name: str | None = None,
) -> Rule:
    """Build a rule deleting all tuples of ``relation`` whose attribute matches.

    ``ΔR(x0..xn) :- R(x0..xn), x<position> <op> <value>`` — the form used by
    most of the paper's Table 1/2 programs to select the seed tuples by a
    constant (``aid = C``, ``sk < C`` ...).
    """
    variables = tuple(Variable(f"x{i}") for i in range(arity))
    head = Atom(relation, variables, is_delta=True)
    guard = Atom(relation, variables, is_delta=False)
    from repro.datalog.ast import Comparison  # local import avoids cycle warnings

    comparison = Comparison(variables[position], op, Constant(value))
    return Rule(head, (guard,), (comparison,), name=name or f"select_{relation}")


@dataclass(frozen=True)
class DeltaProgram:
    """A validated delta program.

    Parameters
    ----------
    program:
        The underlying datalog program (all heads must be delta atoms).
    require_guard:
        Enforce the Definition 3.1 guard-atom condition (default True).
    """

    program: Program
    require_guard: bool = True

    def __post_init__(self) -> None:
        seen = set()
        for rule in self.program:
            validate_delta_rule(rule, require_guard=self.require_guard)
            key = (rule.head, rule.body, rule.comparisons)
            if key in seen:
                raise ProgramValidationError(
                    f"duplicate rule in program: {rule}",
                )
            seen.add(key)

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_rules(cls, rules: Iterable[Rule], require_guard: bool = True) -> "DeltaProgram":
        """Build and validate a delta program from an iterable of rules."""
        return cls(Program(tuple(rules)), require_guard=require_guard)

    @classmethod
    def from_text(cls, source: str, require_guard: bool = True) -> "DeltaProgram":
        """Parse and validate a delta program from its textual syntax."""
        return cls(parse_program(source), require_guard=require_guard)

    # -- collection behaviour ----------------------------------------------------

    @property
    def rules(self) -> tuple[Rule, ...]:
        """The rules of the program, in declaration order."""
        return self.program.rules

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.program)

    def __len__(self) -> int:
        return len(self.program)

    def __getitem__(self, index: int) -> Rule:
        return self.program[index]

    # -- schema conformance ------------------------------------------------------

    def validate_against_schema(self, schema: Schema) -> None:
        """Check every atom's relation exists and has the right arity."""
        for rule in self.program:
            atoms = (rule.head, *rule.body)
            for atom in atoms:
                if atom.relation not in schema:
                    raise ProgramValidationError(
                        f"rule {rule.display_name()}: unknown relation {atom.relation!r}",
                    )
                expected = schema.arity(atom.relation)
                if atom.arity != expected:
                    raise ProgramValidationError(
                        f"rule {rule.display_name()}: atom {atom} has arity "
                        f"{atom.arity}, schema says {expected}",
                    )

    # -- extension ------------------------------------------------------------------

    def with_deletion_requests(self, items: Sequence[Fact]) -> "DeltaProgram":
        """Return a new program with a rule (0)-style request per fact in ``items``."""
        extra = [
            deletion_request_rule(item, name=f"request_{index}")
            for index, item in enumerate(items)
        ]
        return DeltaProgram(
            self.program.extended(extra), require_guard=self.require_guard,
        )

    def with_rules(self, rules: Iterable[Rule]) -> "DeltaProgram":
        """Return a new program extended with additional delta rules."""
        return DeltaProgram(
            self.program.extended(rules), require_guard=self.require_guard,
        )

    # -- introspection ---------------------------------------------------------------

    def head_relations(self) -> frozenset[str]:
        """Relations whose tuples the program may delete."""
        return self.program.head_relations()

    def relations(self) -> frozenset[str]:
        """All relations mentioned by the program."""
        return self.program.relations()

    def __str__(self) -> str:
        return str(self.program)
