"""Worst-case-optimal (generic) join over the in-memory trie indexes.

The binary join path (:func:`~repro.datalog.evaluation.planned_search`)
extends partial assignments one *atom* at a time, which on cyclic bodies
materialises the classic intermediate-result blowup: a triangle
``R(x,y), R(y,z), R(z,x)`` enumerates ``Θ(N²)`` two-atom prefixes even though
only ``O(N^1.5)`` triangles can exist (the AGM bound).  This module implements
the generic-join / leapfrog-triejoin alternative for plans the
:class:`~repro.datalog.planner.JoinPlanner` classified as ``kind="wcoj"``:
variables are bound one at a time along :attr:`JoinPlan.var_order`, and each
variable's candidate values are the *intersection* of the key sets every
participating atom offers at its current trie node — so the search never
explores a prefix that some atom cannot extend.

Integration contract
--------------------

* Extents are walked through the per-position tries of
  :meth:`~repro.storage.indexes.RelationIndex.trie` (delta atoms over the
  delta extent, base atoms over the active extent), so the driver is only
  eligible on the in-memory :class:`~repro.storage.database.Database`.
* The drop-in entry points return plain :class:`Assignment` lists built by the
  same ``_finalize`` machinery as the binary path — body order, comparison
  checking and duplicate semantics are identical, so the semi-naive
  frontier/record pipeline (exactly-once observer delivery included) is
  unchanged.
* Seeded enumeration (:func:`wcoj_seeded_assignments`) mirrors
  :func:`~repro.datalog.seminaive.seeded_rank_assignments`: the seed fact is
  unified first and ``excluded`` rejects assignments whose pre-frontier delta
  atoms matched a frontier fact, preserving the rank-stratified
  exactly-once enumeration.
* Candidate observers see every fact the *candidate iterators* yield; the
  trie walk bypasses those iterators, so the engines only route here when
  ``db.has_candidate_observers`` is False (checked by the callers via
  :func:`wcoj_eligible`).
* Intersections are materialised in sorted value order (type name + repr — a
  deterministic total order even over mixed-type columns), making the
  enumeration order reproducible across runs and shard layouts.

``stats`` (a :class:`~repro.datalog.context.QueryStats`) receives one
``wcoj_intersections`` increment per variable-frontier intersection computed.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence, Set, Tuple

from repro.datalog.ast import Constant, Rule, Variable
from repro.datalog.evaluation import (
    Assignment,
    _check_ready_comparisons,
    _finalize,
    _match_atom,
)
from repro.datalog.planner import PLAN_WCOJ, JoinPlan
from repro.storage.database import Database
from repro.storage.facts import Fact

_MISSING = object()


def wcoj_eligible(db, plan: JoinPlan, hypothetical: bool = False) -> bool:
    """True when ``plan`` should run through the generic-join driver.

    Requires a wcoj-classified plan, the in-memory engine (tries live on
    :class:`~repro.storage.indexes.RelationIndex`), concrete extents (no
    hypothetical active ∪ delta union) and no registered candidate observers
    (they must see every probed fact, which only the binary path delivers).
    """
    return (
        plan.kind == PLAN_WCOJ
        and not hypothetical
        and isinstance(db, Database)
        and not db.has_candidate_observers
    )


def _value_sort_key(value: Any) -> tuple[str, str]:
    """Deterministic total order over heterogeneous attribute values."""
    return (type(value).__name__, repr(value))


class _Cursor:
    """One non-seed body atom's walk state: a pointer into its extent trie.

    ``node`` starts at the trie root descended through the atom's constant
    positions and moves one level per variable occurrence as the driver binds
    variables; after the last occurrence it *is* the matched :class:`Fact`
    (extents hold one fact per value tuple).  ``occurrences[v]`` is how many
    consecutive trie levels variable ``v`` owns for this atom.
    """

    __slots__ = ("index", "node", "occurrences")

    def __init__(self, index: int, node: Any, occurrences: Dict[str, int]) -> None:
        self.index = index
        self.node = node
        self.occurrences = occurrences


def _make_cursor(
    db: Database, rule: Rule, plan: JoinPlan, index: int,
) -> _Cursor | None:
    """Build the cursor for body atom ``index``; None when unsatisfiable."""
    atom = rule.body[index]
    extent = db.relation_index(atom.relation, delta=atom.is_delta)
    const_positions: List[int] = []
    var_positions: Dict[str, List[int]] = {}
    for position, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            const_positions.append(position)
        else:
            assert isinstance(term, Variable)
            var_positions.setdefault(term.name, []).append(position)
    if not atom.terms:
        # Degenerate zero-arity atom: the extent holds at most one fact.
        facts = extent.facts()
        if not facts:
            return None
        return _Cursor(index, next(iter(facts)), {})
    # Trie key order: constants first, then each variable's occurrences as
    # one consecutive block, blocks sequenced by the plan's global variable
    # order — the driver descends exactly one block per variable binding.
    positions: List[int] = list(const_positions)
    for name in plan.var_order:
        if name in var_positions:
            positions.extend(var_positions[name])
    assert len(positions) == len(atom.terms)
    node: Any = extent.trie(tuple(positions))
    for position in const_positions:
        if not isinstance(node, dict):  # pragma: no cover - defensive
            return None
        node = node.get(atom.terms[position].value)
        if node is None:
            return None
    return _Cursor(
        index, node, {name: len(occ) for name, occ in var_positions.items()},
    )


def _descend(
    participants: Sequence[_Cursor], value: Any, name: str
) -> List[Any] | None:
    """Advance every participant through its ``name`` block by ``value``.

    Returns the saved previous nodes for restoration, or None when some atom
    has no fact with that value (the previous nodes are restored here).
    """
    saved: List[Any] = []
    for cursor in participants:
        node = cursor.node
        for _ in range(cursor.occurrences[name]):
            if not isinstance(node, dict):
                node = None
                break
            node = node.get(value)
            if node is None:
                break
        if node is None:
            for restored, prev in zip(participants, saved):
                restored.node = prev
            return None
        saved.append(cursor.node)
        cursor.node = node
    return saved


def _restore(participants: Sequence[_Cursor], saved: Sequence[Any]) -> None:
    for cursor, prev in zip(participants, saved):
        cursor.node = prev


def _enumerate_one(
    db: Database,
    rule: Rule,
    plan: JoinPlan,
    seed_index: int | None,
    seed_fact: Fact | None,
    excluded: Mapping[int, Set[Fact]] | None,
    stats,
    results: List[Assignment],
) -> None:
    """Generic join for one (possibly seeded) evaluation of ``rule``."""
    body = rule.body
    comparisons = rule.comparisons
    if seed_index is not None:
        assert seed_fact is not None
        bindings = _match_atom(body[seed_index], seed_fact, {})
        if bindings is None:
            return
    else:
        bindings = {}
    checked: set[int] = set()
    if not _check_ready_comparisons(comparisons, bindings, checked):
        return
    cursors: List[_Cursor] = []
    for index in range(len(body)):
        if index == seed_index:
            continue
        cursor = _make_cursor(db, rule, plan, index)
        if cursor is None:
            return
        cursors.append(cursor)
    # One schedule step per variable that still owns trie levels; variables
    # appearing only in the seed atom are already fully bound.
    schedule: List[Tuple[str, List[_Cursor]]] = []
    for name in plan.var_order:
        participants = [c for c in cursors if name in c.occurrences]
        if participants:
            schedule.append((name, participants))

    def finalize() -> None:
        used: List[Tuple[int, Fact]] = []
        if seed_index is not None:
            used.append((seed_index, seed_fact))
        for cursor in cursors:
            item = cursor.node
            assert isinstance(item, Fact)
            if excluded is not None:
                frontier = excluded.get(cursor.index)
                if frontier is not None and item in frontier:
                    return
            used.append((cursor.index, item))
        _finalize(rule, body, comparisons, bindings, used, set(checked), results)

    def step(depth: int) -> None:
        if depth == len(schedule):
            finalize()
            return
        name, participants = schedule[depth]
        bound = bindings.get(name, _MISSING)
        if bound is not _MISSING:
            saved = _descend(participants, bound, name)
            if saved is None:
                return
            step(depth + 1)
            _restore(participants, saved)
            return
        if stats is not None:
            stats.wcoj_intersections += 1
        smallest = min(participants, key=lambda c: len(c.node))
        others = [c for c in participants if c is not smallest]
        values = [
            value
            for value in smallest.node
            if all(value in c.node for c in others)
        ]
        values.sort(key=_value_sort_key)
        outer_checked = set(checked)
        for value in values:
            saved = _descend(participants, value, name)
            if saved is None:
                continue
            bindings[name] = value
            checked.clear()
            checked.update(outer_checked)
            if _check_ready_comparisons(comparisons, bindings, checked):
                step(depth + 1)
            del bindings[name]
            _restore(participants, saved)
        checked.clear()
        checked.update(outer_checked)

    step(0)


def wcoj_assignments(
    db: Database, rule: Rule, plan: JoinPlan, stats=None,
) -> List[Assignment]:
    """Full (unseeded) generic-join evaluation of ``rule`` over ``db``.

    The drop-in replacement for the binary planned search of
    :func:`~repro.datalog.evaluation.find_assignments`: same result contract
    (assignments in a deterministic order, duplicates impossible).
    """
    results: List[Assignment] = []
    _enumerate_one(db, rule, plan, None, None, None, stats, results)
    return results


def wcoj_seeded_assignments(
    db: Database,
    rule: Rule,
    plan: JoinPlan,
    seed_index: int,
    seed_facts: Sequence[Fact],
    excluded: Mapping[int, Set[Fact]] | None = None,
    stats=None,
) -> List[Assignment]:
    """Seeded generic join: unify body atom ``seed_index`` with each seed fact.

    ``excluded`` maps body-atom indices to fact sets the atom must *not*
    match — the semi-naive rank stratification's pre-frontier exclusion (and
    nothing else).  Seed facts are enumerated in the given order so callers
    control determinism exactly as on the binary path.
    """
    results: List[Assignment] = []
    for item in seed_facts:
        _enumerate_one(db, rule, plan, seed_index, item, excluded, stats, results)
    return results
