"""Shared evaluation context: plan caches, assignment observers, query stats.

One :class:`EvalContext` groups a family of fixpoint runs that should share
their planning work — typically the four semantics of one
:class:`~repro.core.repair.RepairEngine.compare` call, which evaluate the same
program against clones of the same database.  The context carries three kinds
of shared state:

* **plan caches** — a structural :class:`~repro.datalog.planner.JoinPlan`
  cache handed to every in-memory :class:`~repro.datalog.planner.JoinPlanner`
  the context creates (:meth:`planner`), and a per-rule cache of compiled
  frontier variants for the SQLite engine (:meth:`frontier_variants`), so one
  ``compare()`` run plans each rule structure and compiles each rule exactly
  once across all four semantics;
* **assignment observers** — callables invoked once per *new* assignment a
  closure enumerates (:meth:`add_observer` / :meth:`notify`).  Observers are
  the reason a SQLite round materialises its staged rows at all: when a run
  has no observer, no ``on_assignment`` hook and ``collect_assignments=False``,
  the SQL driver skips assignment enumeration entirely and installs head facts
  straight from the single join (the *fast path*);
* **query statistics** (:class:`QueryStats`) — counters the SQL driver bumps
  per executed statement class, used by the regression tests and the benchmark
  smoke run to assert that every rule variant's join runs exactly once per
  round (no double-join).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Tuple

from repro.datalog.planner import (
    COLLAPSE_MIN_FRONTIER,
    DRIFT_FACTOR,
    effective_shard_count,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.datalog.ast import Rule
    from repro.datalog.evaluation import Assignment
    from repro.datalog.planner import JoinPlanner
    from repro.datalog.sql_compiler import FrontierQuery
    from repro.storage.database import BaseDatabase
    from repro.storage.facts import Fact

#: Environment variable overriding the default shard count of the sharded
#: engine (read dynamically so a CI job can flip a whole test run at once).
SHARDS_ENV = "REPRO_SHARDS"

#: Default shard count of ``engine="sharded"`` when neither the context nor
#: the environment picks one: enough shards to exercise the partitioned path
#: even on small machines, one worker per core up to the shard count.
DEFAULT_SHARDS = 4


def env_shards() -> int | None:
    """The :data:`SHARDS_ENV` override, or None when unset/invalid."""
    raw = os.environ.get(SHARDS_ENV)
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value > 0 else None


#: Environment variable opting the incremental maintenance drivers into the
#: sharded execution paths (insert discovery, frontier propagation and the
#: DRed scans fan out over the worker pool).  Separate from :data:`SHARDS_ENV`
#: on purpose: ``REPRO_SHARDS`` alone reroutes the *closure loads* through the
#: sharded engine while the per-batch maintenance stays serial, so CI can
#: exercise either axis independently.
MAINTENANCE_ENV = "REPRO_SHARD_MAINTENANCE"


def env_shard_maintenance() -> bool:
    """True when :data:`MAINTENANCE_ENV` enables sharded maintenance."""
    raw = os.environ.get(MAINTENANCE_ENV, "").strip().lower()
    return raw not in ("", "0", "false", "no", "off")


#: Environment variable opting the in-memory sharded closure into the
#: multiprocessing worker pool (:mod:`repro.datalog.process_pool`) instead of
#: the GIL-bound thread pool.  Same dynamic-read contract as the other knobs.
PROCESS_POOL_ENV = "REPRO_PROCESS_POOL"


def env_process_pool() -> bool:
    """True when :data:`PROCESS_POOL_ENV` enables the process pool."""
    raw = os.environ.get(PROCESS_POOL_ENV, "").strip().lower()
    return raw not in ("", "0", "false", "no", "off")


#: Environment variable overriding the shard-collapse threshold
#: (:data:`~repro.datalog.planner.COLLAPSE_MIN_FRONTIER`); ``0`` disables
#: collapse entirely (every variant fans out to the full shard count).
COLLAPSE_ENV = "REPRO_COLLAPSE_MIN"


def env_collapse_min() -> int | None:
    """The :data:`COLLAPSE_ENV` override, or None when unset/invalid."""
    raw = os.environ.get(COLLAPSE_ENV)
    if raw is None or not raw.strip():
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value >= 0 else None


#: Signature of an assignment observer.
AssignmentObserver = Callable[["Assignment"], None]

#: Signature of a candidate observer: ``(relation, fact)`` for every fact an
#: in-memory candidate iterator yields while a subscribed run evaluates.
CandidateObserver = Callable[[str, "Fact"], None]


@dataclass
class QueryStats:
    """Per-statement-class counters for the SQLite semi-naive driver.

    Attributes
    ----------
    staged_selects:
        Keyed ``INSERT INTO _repro_stage_wN ... SELECT`` statements — one
        *join* each; the staged rows then feed the observers (and, in the
        closure driver, the install).  Includes the staged stage-discovery
        joins run when a context is shared across semantics.
    stage_ddl:
        ``CREATE TEMP TABLE``/``CREATE INDEX`` statements creating a keyed
        stage table — at most one table per distinct variant width per
        connection; steady-state rounds issue none (the zero-DDL discipline
        the staging tests assert).
    staged_installs:
        ``INSERT OR IGNORE ... SELECT ... FROM`` the stage table — a scan of
        the staged rows, **not** a join over the base tables.
    direct_installs:
        Fast-path ``INSERT OR IGNORE ... SELECT`` over the base tables — one
        join each, used when no observer needs the assignments.
    assignment_selects:
        Plain streaming assignment ``SELECT`` joins run under a context —
        the stage-semantics discovery path when no assignment observer is
        registered (staging would be pure overhead with a single consumer;
        the gate mirrors the closure driver's ``observing`` flag).
    replans:
        Join plans rebuilt by round-boundary re-costing: the in-memory
        planner detected that a relation's extent drifted past the
        :data:`~repro.datalog.planner.DRIFT_FACTOR` band around the
        cardinalities its cached plan was costed with, and re-costed the
        plan in the shared structural cache.
    noop_replans:
        The subset of :attr:`replans` whose rebuilt plan kept the old join
        order — wasted rebuilds, the signal the adaptive drift band widens
        on (see *Adaptive drift band* in :mod:`repro.datalog.planner`).
    drift_factor:
        The re-costing band observed at the last replan — the base
        :data:`~repro.datalog.planner.DRIFT_FACTOR` until consecutive no-op
        replans widen it.
    shard_selects:
        Per-shard join SELECTs executed by the sharded SQLite driver — one
        hash-partition of one variant's body join each; a round evaluates
        every variant exactly once *in total* across its shards.
    shard_installs:
        Merged head-fact install batches (``INSERT OR IGNORE`` executemany
        over the rows the shard SELECTs returned) — one per variant
        execution per round, always on the primary connection.
    effective_shards:
        Sum over variant executions of the shard count each one actually
        fanned out to after dynamic collapse
        (:func:`~repro.datalog.planner.effective_shard_count`) — with
        collapse disabled this equals ``shards ×`` the number of variant
        executions; on a single worker it equals the execution count (every
        variant collapsed to one inline evaluation).
    collapsed_rounds:
        Rounds of a sharded closure in which *every* evaluated variant
        collapsed to a single inline evaluation — the whole round ran without
        a pool submit or a reader connection.
    pipelined_waves:
        Variant shard-waves whose per-shard SELECTs were submitted to the
        worker pool *before* the previous variant's merge/install finished —
        the producer/consumer overlap of the pipelined SQLite driver.  Zero
        when everything collapses (nothing to overlap).
    replay_batches:
        Bounded chunks in which staged rows were replayed to observers
        (:data:`~repro.datalog.sql_seminaive.STAGE_REPLAY_CHUNK` rows per
        chunk) instead of one unbounded Python round trip.
    variant_compiles:
        Distinct rules whose frontier variants this context resolved (cache
        misses of :meth:`EvalContext.frontier_variants`).  This counts
        *per-context* first sightings — the compilation itself is also
        memoised process-wide by the ``lru_cache`` on
        :func:`~repro.datalog.sql_compiler.compile_frontier_rule`, so a miss
        here is cheap; the counter exists to make sharing observable in
        tests, not to measure compile cost.  Keyed per ``(rule, plan kind)``
        since the wcoj lowering compiles distinct SQL.
    wcoj_rules:
        Plan builds the in-memory planner classified as worst-case-optimal
        (``plan_kind="wcoj"``) — once per build, so round-boundary re-costing
        that re-confirms the kind counts again.
    wcoj_intersections:
        Variable-level leapfrog intersection steps the generic-join driver
        performed (one per variable binding frontier explored).  Updated by
        the in-memory wcoj driver only; SQLite wcoj statements are observable
        through the ``/* repro:wcoj */`` statement tag instead.
    width_estimates:
        Width classifications performed (GYO reduction + AGM-vs-binary cost
        comparison) — one per plan build over a body with ≥ 2 atoms.
    maintained_batches:
        Insert/delete batches absorbed incrementally by a
        :class:`~repro.service.RepairService` (one per
        :meth:`~repro.service.RepairService.apply` call) instead of a full
        re-fixpoint.
    overdeleted:
        Delta facts the DRed deletion pass over-deleted — facts with at least
        one derivation transitively touching a deleted base fact, each a
        re-derivation candidate.
    rederived:
        The subset of :attr:`overdeleted` rescued by the re-derivation pass
        (an alternative derivation avoiding the deleted facts survived); the
        difference ``overdeleted - rederived`` left the delta extent.
    counted_deletes:
        Deletion batches fully decided by the counting fast path: every killed
        assignment's derived fact kept a positive *base-only* support count,
        so the DRed over-delete / re-derive detour was skipped entirely.
    dred_fallbacks:
        Deletion batches where support counts alone could not prove every
        affected fact alive, so the exact DRed passes ran (with counting-based
        pruning of provably alive facts when enabled).
    maint_discovery_shards:
        Per-shard insert-discovery jobs the sharded maintenance path ran —
        one hash partition of one (rule, eligible position)'s seed facts
        each.  Zero while maintenance runs serial
        (:meth:`EvalContext.wants_shard_maintenance` off).
    maint_propagate_shards:
        Per-shard frontier-propagation jobs of the sharded maintenance path:
        one hash partition of one (rule, rank)'s frontier in memory, one
        ``rowid % :nshards`` window of one seeded variant on SQLite.
    maint_dred_shards:
        Per-shard DRed scan jobs (over-delete BFS levels and re-derive
        sweeps) the sharded maintenance path ran; the counting fast path
        never shards (it decides batches from support counts alone).
    """

    staged_selects: int = 0
    stage_ddl: int = 0
    staged_installs: int = 0
    direct_installs: int = 0
    assignment_selects: int = 0
    replans: int = 0
    noop_replans: int = 0
    drift_factor: float = DRIFT_FACTOR
    variant_compiles: int = 0
    shard_selects: int = 0
    shard_installs: int = 0
    effective_shards: int = 0
    collapsed_rounds: int = 0
    pipelined_waves: int = 0
    replay_batches: int = 0
    wcoj_rules: int = 0
    wcoj_intersections: int = 0
    width_estimates: int = 0
    maintained_batches: int = 0
    overdeleted: int = 0
    rederived: int = 0
    counted_deletes: int = 0
    dred_fallbacks: int = 0
    maint_discovery_shards: int = 0
    maint_propagate_shards: int = 0
    maint_dred_shards: int = 0

    def joins(self) -> int:
        """Total statements that join the base/frontier tables.

        Every shard SELECT covers one hash-partition of a variant's join, so
        the sharded counter is included: across the shards of one round each
        variant's join is still evaluated exactly once in total.
        """
        return (
            self.staged_selects
            + self.direct_installs
            + self.assignment_selects
            + self.shard_selects
        )

    def reset(self) -> None:
        """Zero every counter (the benchmark reuses one context per run)."""
        self.staged_selects = 0
        self.stage_ddl = 0
        self.staged_installs = 0
        self.direct_installs = 0
        self.assignment_selects = 0
        self.replans = 0
        self.noop_replans = 0
        self.drift_factor = DRIFT_FACTOR
        self.variant_compiles = 0
        self.shard_selects = 0
        self.shard_installs = 0
        self.effective_shards = 0
        self.collapsed_rounds = 0
        self.pipelined_waves = 0
        self.replay_batches = 0
        self.wcoj_rules = 0
        self.wcoj_intersections = 0
        self.width_estimates = 0
        self.maintained_batches = 0
        self.overdeleted = 0
        self.rederived = 0
        self.counted_deletes = 0
        self.dred_fallbacks = 0
        self.maint_discovery_shards = 0
        self.maint_propagate_shards = 0
        self.maint_dred_shards = 0


@dataclass
class EvalContext:
    """Shared cross-run evaluation state (see module docstring).

    A context is cheap to create and safe to drop; every fixpoint entry point
    creates a private one when the caller does not pass ``context=``.  Sharing
    only ever reuses *structural* artefacts (join orders keyed on rule shape,
    compiled SQL keyed on the rule), so one context may span databases with
    different contents — e.g. the per-semantics clones of a ``compare()`` run.

    ``shards`` / ``workers`` configure the sharded engine
    (:mod:`repro.datalog.sharded`): ``shards`` is the number of hash
    partitions each round's frontier is split into, ``workers`` the number of
    worker threads the per-shard enumeration fans out across.  Either may be
    left None: ``shards`` then falls back to the :data:`SHARDS_ENV`
    environment override, the ``workers`` value, or :data:`DEFAULT_SHARDS`;
    ``workers`` defaults to one per CPU core, capped at the shard count.
    Setting either knob (or the environment variable) also makes
    ``engine="auto"`` resolve to the sharded engine — the opt-in heuristic of
    :func:`repro.datalog.evaluation.resolve_engine`.

    ``collapse_min`` tunes dynamic shard collapse: a variant whose observed
    frontier/extent is smaller than this many rows (default
    :data:`~repro.datalog.planner.COLLAPSE_MIN_FRONTIER`, env override
    :data:`COLLAPSE_ENV`) runs as a single inline evaluation instead of
    fanning out; ``0`` disables collapse (full fan-out regardless of size).
    ``process_pool`` opts the in-memory sharded closure into a
    ``multiprocessing`` worker pool (:mod:`repro.datalog.process_pool`) —
    real parallelism past the GIL, at the cost of pickling per-round frontier
    batches to the workers.  None defers to :data:`PROCESS_POOL_ENV`.

    ``shard_maintenance`` opts the *incremental maintenance drivers*
    (:mod:`repro.datalog.incremental`) into the same hash-partitioned
    worker-pool execution: insert discovery, frontier propagation and the
    DRed scans fan their per-batch work across ``shards`` partitions and
    ``workers`` threads.  None defers to the :data:`MAINTENANCE_ENV`
    environment override; an explicit False pins maintenance serial even
    under the environment knob.  Either way the maintained state is
    byte-identical — same closure, same assignment record order, same
    observer stream, same persisted store — at any shard/worker count.
    """

    stats: QueryStats = field(default_factory=QueryStats)
    shards: int | None = None
    workers: int | None = None
    shard_maintenance: bool | None = None
    process_pool: bool | None = None
    collapse_min: int | None = None
    _plans: Dict = field(default_factory=dict, repr=False)
    _variants: Dict = field(default_factory=dict, repr=False)
    _observers: List[AssignmentObserver] = field(default_factory=list, repr=False)
    _candidate_observers: List[CandidateObserver] = field(
        default_factory=list, repr=False,
    )

    # -- sharding ---------------------------------------------------------------

    def shard_count(self) -> int:
        """The number of hash partitions the sharded engine splits rounds into.

        Resolution order: the explicit :attr:`shards` knob, the
        :data:`SHARDS_ENV` environment override, the :attr:`workers` knob
        (one shard per worker), then :data:`DEFAULT_SHARDS`.
        """
        if self.shards is not None:
            return max(1, int(self.shards))
        from_env = env_shards()
        if from_env is not None:
            return from_env
        if self.workers is not None:
            return max(1, int(self.workers))
        return DEFAULT_SHARDS

    def worker_count(self) -> int:
        """The number of worker threads the sharded engine fans out across.

        Defaults to one per CPU core, never more than the shard count (extra
        workers would idle) and never less than one.
        """
        if self.workers is not None:
            return max(1, min(int(self.workers), self.shard_count()))
        return max(1, min(os.cpu_count() or 1, self.shard_count()))

    def wants_sharding(self) -> bool:
        """True when ``engine="auto"`` should resolve to the sharded engine.

        An explicit :attr:`shards` / :attr:`workers` knob or the
        :data:`SHARDS_ENV` environment variable always opts in.  With every
        knob unset, auto consults ``os.cpu_count()``: multi-core machines get
        the sharded engine by default (dynamic shard collapse makes it
        never slower than semi-naive even on small frontiers), while a
        single-core machine stays on semi-naive — there the fan-out is pure
        bookkeeping with no concurrency to buy back.
        """
        if (
            self.shards is not None
            or self.workers is not None
            or env_shards() is not None
        ):
            return True
        return (os.cpu_count() or 1) > 1

    # -- dynamic shard collapse -------------------------------------------------

    def collapse_threshold(self) -> int:
        """The frontier size below which a variant collapses to one shard.

        Resolution order: the explicit :attr:`collapse_min` knob, the
        :data:`COLLAPSE_ENV` environment override, then
        :data:`~repro.datalog.planner.COLLAPSE_MIN_FRONTIER`.  Zero disables
        collapse (full fan-out).
        """
        if self.collapse_min is not None:
            return max(0, int(self.collapse_min))
        from_env = env_collapse_min()
        if from_env is not None:
            return from_env
        return COLLAPSE_MIN_FRONTIER

    def effective_shards_for(self, size: int) -> int:
        """Shard count one variant over ``size`` rows should fan out to.

        Applies :func:`~repro.datalog.planner.effective_shard_count` to this
        context's resolved shard/worker counts and collapse threshold, and
        records the decision in :attr:`QueryStats.effective_shards`.
        """
        effective = effective_shard_count(
            size,
            self.shard_count(),
            self.worker_count(),
            self.collapse_threshold(),
        )
        self.stats.effective_shards += effective
        return effective

    def wants_process_pool(self) -> bool:
        """True when the in-memory sharded closure should use process workers.

        The explicit :attr:`process_pool` knob wins in both directions; when
        left None the :data:`PROCESS_POOL_ENV` environment variable decides.
        """
        if self.process_pool is not None:
            return bool(self.process_pool)
        return env_process_pool()

    def wants_shard_maintenance(self) -> bool:
        """True when the maintenance drivers should run their sharded paths.

        The explicit :attr:`shard_maintenance` knob wins in both directions;
        when left None the :data:`MAINTENANCE_ENV` environment variable
        decides (read dynamically, like :data:`SHARDS_ENV`, so a CI job can
        flip a whole test run at once).
        """
        if self.shard_maintenance is not None:
            return bool(self.shard_maintenance)
        return env_shard_maintenance()

    # -- planning ---------------------------------------------------------------

    def planner(self, db: "BaseDatabase") -> "JoinPlanner":
        """A planner for ``db`` backed by this context's shared plan cache.

        Cardinality estimates stay per-planner (they describe one database
        instance); the structural plan dictionary is shared, so every planner
        the context hands out benefits from plans built by the others.
        Planners created through a context also re-cost cached plans at round
        boundaries (see :meth:`~repro.datalog.planner.JoinPlanner.begin_round`)
        and record every rebuild in :attr:`QueryStats.replans`.
        """
        from repro.datalog.planner import JoinPlanner

        return JoinPlanner(db, plans=self._plans, stats=self.stats)

    def plan_cache_size(self) -> int:
        """Number of distinct rule structures planned so far."""
        return len(self._plans)

    def frontier_variants(
        self, rule: "Rule",
    ) -> Tuple["FrontierQuery", Tuple["FrontierQuery", ...]]:
        """The compiled ``(full, seeded)`` SQL variants of ``rule``, cached.

        The first request per rule resolves the variants (and counts a
        :attr:`QueryStats.variant_compiles`); later requests — including from
        other semantics sharing the context — return the cached tuple.  The
        per-context dict sits on top of the process-wide ``lru_cache`` of
        :func:`~repro.datalog.sql_compiler.compile_frontier_rule`: it pins
        the variants against lru eviction for the context's lifetime and
        gives the tests a deterministic sharing signal.  The cache key
        includes the resolved plan kind so flipping ``REPRO_FORCE_PLAN``
        mid-process can never serve a stale lowering.
        """
        from repro.datalog.sql_compiler import (
            compile_frontier_rule,
            resolve_plan_kind,
        )

        key = (rule, resolve_plan_kind(rule))
        cached = self._variants.get(key)
        if cached is None:
            self.stats.variant_compiles += 1
            cached = compile_frontier_rule(rule, plan_kind=key[1])
            self._variants[key] = cached
        return cached

    def query_context(self) -> "EvalContext":
        """A derived context sharing stats, knobs and caches — but no observers.

        The incremental-maintenance layer (:mod:`repro.datalog.incremental`)
        runs internal discovery queries that must benefit from this context's
        plan/variant caches and account into the same :class:`QueryStats`,
        while observer delivery stays under the caller's exactly-once
        deduplication — the SQL discovery path notifies context observers
        itself, so handing it the primary context would deliver assignments
        twice.
        """
        derived = EvalContext(
            stats=self.stats,
            shards=self.shards,
            workers=self.workers,
            shard_maintenance=self.shard_maintenance,
            process_pool=self.process_pool,
            collapse_min=self.collapse_min,
        )
        derived._plans = self._plans
        derived._variants = self._variants
        return derived

    # -- observers --------------------------------------------------------------

    def add_observer(self, observer: AssignmentObserver) -> None:
        """Register ``observer`` to receive every new assignment enumerated."""
        self._observers.append(observer)

    def remove_observer(self, observer: AssignmentObserver) -> None:
        """Unregister a previously added observer (no-op when absent)."""
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    @property
    def has_observers(self) -> bool:
        """True when at least one observer is registered."""
        return bool(self._observers)

    def notify(self, assignment: "Assignment") -> None:
        """Deliver one new assignment to every registered observer."""
        for observer in self._observers:
            observer(assignment)

    # -- candidate observers -----------------------------------------------------

    def add_candidate_observer(self, observer: CandidateObserver) -> None:
        """Register ``observer`` on the in-memory candidate iterators.

        While a run that honours the context evaluates (the semi-naive
        in-memory closure, or a :class:`~repro.baselines.trigger_engine.TriggerEngine`
        cascade), ``observer(relation, fact)`` fires for every fact a
        :class:`~repro.storage.indexes.RelationIndex` candidate iterator
        yields — a *probe-level* stream, delivered mid-round / mid-cascade as
        the join explores, not once per finished assignment.  The SQL engine
        never iterates candidates in Python, so SQLite-backed runs deliver
        nothing here (subscribe assignment observers instead).
        """
        self._candidate_observers.append(observer)

    def remove_candidate_observer(self, observer: CandidateObserver) -> None:
        """Unregister a previously added candidate observer (no-op when absent)."""
        try:
            self._candidate_observers.remove(observer)
        except ValueError:
            pass

    @property
    def has_candidate_observers(self) -> bool:
        """True when at least one candidate observer is registered."""
        return bool(self._candidate_observers)

    def notify_candidate(self, relation: str, item: "Fact") -> None:
        """Deliver one candidate fact to every registered candidate observer."""
        for observer in self._candidate_observers:
            observer(relation, item)
