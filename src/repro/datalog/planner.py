"""Per-rule join planning for the tuple-at-a-time evaluator.

The naive evaluator re-picks "the most constrained remaining atom" at every
recursion node of every assignment search.  That scan is quadratic in the body
length per produced binding and, worse, ignores relation sizes entirely.  This
module computes a **static join order once per (rule, seed atom)** and caches
it, in the spirit of the classic selectivity-driven planners (and of the
worst-case-optimal join literature, where the variable/atom order is fixed up
front from the query structure):

* atoms whose variables are already bound (connected to the prefix) are
  preferred — they act as hash-joins on the per-attribute indexes rather than
  cross products;
* among equally connected atoms the one over the smallest extent comes first,
  so intermediate results stay small;
* ties fall back to body order for determinism.

A plan is keyed by the rule's *structure* (relations, delta flags and variable
positions) rather than by the rule object, so rules that differ only in the
constant values they mention — e.g. the per-event probe rules the trigger
baseline builds, or the per-tuple deletion requests of Section 3.6 — share a
single cached plan.

Round-boundary re-costing
-------------------------

A cached plan remembers the cardinalities it was costed with
(:attr:`JoinPlan.cost_snapshot`).  Delta extents start near-empty and can grow
by orders of magnitude across a deep cascade, so a join order that was right
in round 2 may be badly wrong by round 10.  The semi-naive frontier loop calls
:meth:`JoinPlanner.begin_round` at every round boundary, which drops the
planner's per-round cardinality cache; the next :meth:`JoinPlanner.plan`
request for a cached plan then compares the *current* extents against the
snapshot and rebuilds the plan when any relation drifted past the
:data:`DRIFT_FACTOR` band (in either direction).  Rebuilt plans replace their
predecessor in the (possibly context-shared) structural cache — sharing is
preserved, only the costing is refreshed — and every rebuild is recorded in
:attr:`~repro.datalog.context.QueryStats.replans` when the planner was created
through an :class:`~repro.datalog.context.EvalContext`.  Without a
``begin_round`` call the cardinality cache never refreshes and the planner
behaves exactly as before (plans are permanent).

Adaptive drift band
-------------------

Re-costing is only worth its cardinality reads when the rebuilt plan actually
changes the join order.  The planner therefore tracks the *outcome* of every
rebuild: a rebuild that kept the old order is a **no-op replan**
(:attr:`~repro.datalog.context.QueryStats.noop_replans`), and after
:data:`NOOP_STREAK_TO_WIDEN` consecutive no-ops the band doubles (up to
:data:`MAX_DRIFT_FACTOR`), so a workload whose extents swing wildly without
ever changing the optimal order stops paying for rebuilds.  A rebuild that
*does* change the order resets the band to the base :data:`DRIFT_FACTOR` —
the drift signal proved informative again.  The band currently in effect is
exposed through :attr:`~repro.datalog.context.QueryStats.drift_factor` when
the planner came from an :class:`~repro.datalog.context.EvalContext`.

Width-aware plan kinds
----------------------

Binary join orders are provably suboptimal on *cyclic* rule bodies: a
triangle ``R(x,y), R(y,z), R(z,x)`` over ``N`` facts can produce ``Θ(N²)``
intermediate pairs even though at most ``O(N^1.5)`` triangles exist (the AGM
bound).  The planner therefore classifies every body with at least two
relational atoms into a ``plan_kind``:

* ``"binary"`` — the classic one-atom-at-a-time order above;
* ``"wcoj"`` — a variable-at-a-time generic join (:mod:`repro.datalog.wcoj`
  in memory, ``CROSS JOIN``-pinned multiway joins on SQLite).

Classification runs a GYO reduction on the body's join hypergraph
(:func:`cyclic_core`); acyclic bodies always stay binary.  For a cyclic body
the planner compares a cardinality-based AGM estimate — the product of the
extents of a greedy fractional-edge-cover of the cyclic core — against the
binary plan's first-join cost estimate, and picks ``wcoj`` when the AGM
estimate is no worse.  The decision is re-taken by the same round-boundary
re-costing machinery that refreshes join orders, so a rule can switch kinds
as delta extents grow.  ``REPRO_FORCE_PLAN=binary|wcoj`` (read per plan
build) overrides the heuristic for differential testing; hypothetical plans
(independent semantics) always stay binary because wcoj tries cover single
extents, not the active ∪ delta union.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, FrozenSet, Hashable, Tuple

from repro.datalog.ast import Constant, Rule, Variable
from repro.storage.database import BaseDatabase

#: Marker used in plan keys for constant positions (the value is irrelevant
#: to the plan: any constant is an equality constraint on that position).
_CONST = "\0const"

#: Re-cost a cached plan when some scanned extent grew or shrank by at least
#: this factor relative to the plan's cost snapshot.  Join orders only change
#: on large relative swings (the planner compares sizes, not estimates), so a
#: wide band keeps replans rare and ping-ponging impossible within a round.
DRIFT_FACTOR = 4.0

#: Consecutive no-op replans (rebuilds that kept the join order) after which
#: the drift band widens — and keeps widening on every further no-op.
NOOP_STREAK_TO_WIDEN = 2

#: Ceiling for the adaptively widened drift band.
MAX_DRIFT_FACTOR = 64.0

#: Environment knob forcing every eligible rule onto one plan kind
#: (``binary`` or ``wcoj``); read at each plan build so tests can flip it.
PLAN_ENV = "REPRO_FORCE_PLAN"

#: Smallest frontier/extent size worth a full shard fan-out.  Below this the
#: sharded drivers collapse the variant to a single inline evaluation (see
#: :func:`effective_shard_count`): the per-round delta of a deep cascade is
#: often a handful of facts, and hashing/merging them across shards costs more
#: than the join itself.  Override per context via
#: ``EvalContext(collapse_min=...)`` or :data:`~repro.datalog.context.COLLAPSE_ENV`.
COLLAPSE_MIN_FRONTIER = 64


def effective_shard_count(
    size: int, shards: int, workers: int, minimum: int = COLLAPSE_MIN_FRONTIER,
) -> int:
    """The shard count one variant execution should actually fan out to.

    Dynamic shard collapse (the adaptive half of the sharded engine): the
    configured ``shards`` is a *ceiling*, and the per-(rule, variant, round)
    decision scales it down from the observed ``size`` of the frontier or
    extent the variant will scan:

    * with ``workers <= 1`` or ``shards <= 1`` there is no real concurrency —
      fan-out is pure bookkeeping overhead, so everything collapses to one
      inline evaluation (this is what makes ``engine="sharded"`` never slower
      than semi-naive on a single core);
    * a ``size`` below ``minimum`` collapses too — per-round work should be
      proportional to the delta, and a tiny frontier must not pay a fan-out;
    * otherwise the variant fans out to one shard per ``minimum`` rows, at
      least two (collapsing *to* one is the inline case above), never more
      than ``shards``.

    ``minimum <= 0`` disables collapse entirely (full fan-out regardless of
    size) — the escape hatch the determinism differentials use to force the
    parallel machinery on small instances.
    """
    if shards <= 1:
        return 1
    if minimum <= 0:
        return shards
    if workers <= 1 or size < minimum:
        return 1
    return min(shards, max(2, size // minimum))

#: The two plan kinds (see module docstring, *Width-aware plan kinds*).
PLAN_BINARY = "binary"
PLAN_WCOJ = "wcoj"


def env_forced_plan() -> str | None:
    """The plan kind forced via :data:`PLAN_ENV`, or None when unset/invalid."""
    forced = os.environ.get(PLAN_ENV, "").strip().lower()
    return forced if forced in (PLAN_BINARY, PLAN_WCOJ) else None


@lru_cache(maxsize=4096)
def _gyo_core(edges: Tuple[FrozenSet[str], ...]) -> Tuple[int, ...]:
    """Indices of the hyperedges surviving a GYO reduction (empty = acyclic).

    Classic Graham/Yu–Özsoyoğlu ear removal: repeatedly delete vertices that
    occur in exactly one edge and edges contained in another edge (of a pair
    of equal edges only the later one is dropped).  The reduction empties the
    hypergraph iff it is α-acyclic; whatever survives is the cyclic core.
    """
    alive: Dict[int, set] = {
        index: set(edge) for index, edge in enumerate(edges) if edge
    }
    changed = True
    while changed and alive:
        changed = False
        counts: Dict[str, int] = {}
        for vertices in alive.values():
            for vertex in vertices:
                counts[vertex] = counts.get(vertex, 0) + 1
        for vertices in alive.values():
            isolated = {v for v in vertices if counts[v] == 1}
            if isolated:
                vertices -= isolated
                changed = True
        for index in [i for i, vertices in alive.items() if not vertices]:
            del alive[index]
            changed = True
        for index in sorted(alive, reverse=True):
            vertices = alive[index]
            for other, theirs in alive.items():
                if other != index and vertices <= theirs and (
                    vertices < theirs or other < index
                ):
                    del alive[index]
                    changed = True
                    break
    return tuple(sorted(alive))


def cyclic_core(rule: Rule) -> Tuple[int, ...]:
    """Body-atom indices forming the cyclic core of ``rule`` (empty = acyclic)."""
    return _gyo_core(tuple(atom.variable_names() for atom in rule.body))


@dataclass(frozen=True)
class JoinPlan:
    """A static join order for one rule body.

    Attributes
    ----------
    order:
        Body-atom indices in the order the evaluator should match them.  When
        the plan was seeded, the seed atom's index comes first.
    seed:
        The body-atom index the plan assumes is matched first (from the
        delta frontier), or None for a full evaluation plan.
    cost_snapshot:
        The ``((relation, delta), size)`` cardinalities the plan was costed
        with, used by round-boundary re-costing to detect drift.  Empty for
        hand-built plans (never re-costed).
    kind:
        ``"binary"`` or ``"wcoj"`` (see module docstring, *Width-aware plan
        kinds*).  Defaults to binary so hand-built plans keep working.
    var_order:
        For wcoj plans: the global variable elimination order the generic
        join binds variables in (seed-atom variables first, then descending
        atom-degree).  Empty for binary plans.
    width:
        The fractional-cover width estimate of the cyclic core (e.g. 1.5 for
        a triangle); 1.0 for acyclic/binary plans.  Informational.
    """

    order: Tuple[int, ...]
    seed: int | None = None
    cost_snapshot: Tuple[Tuple[Tuple[str, bool], int], ...] = field(
        default=(), compare=False,
    )
    kind: str = PLAN_BINARY
    var_order: Tuple[str, ...] = field(default=(), compare=False)
    width: float = field(default=1.0, compare=False)


def _atom_shape(atom) -> tuple:
    """The plan-relevant shape of an atom: relation, delta flag, term pattern."""
    return (
        atom.relation,
        atom.is_delta,
        tuple(
            term.name if isinstance(term, Variable) else _CONST for term in atom.terms
        ),
    )


def plan_key(rule: Rule, seed: int | None, hypothetical: bool) -> Hashable:
    """Cache key identifying every rule with the same body structure."""
    return (
        tuple(_atom_shape(atom) for atom in rule.body),
        seed,
        hypothetical,
    )


class JoinPlanner:
    """Computes and caches :class:`JoinPlan` objects against one database.

    One planner is created per evaluation session (a closure run, a trigger
    cascade, a provenance build...) so the cardinalities it reads reflect the
    instance being evaluated; plans are cached on first use and reused for
    every later round.

    ``plans`` optionally injects a shared plan dictionary — the handle an
    :class:`~repro.datalog.context.EvalContext` passes so that the planners of
    one ``RepairEngine.compare()`` run (one per semantics, each over its own
    clone) reuse each other's join orders.  Plans are keyed purely on rule
    *structure*, so sharing them across clones of the same database is sound;
    only the cardinality snapshots stay per-planner.  ``stats`` (a
    :class:`~repro.datalog.context.QueryStats`) records round-boundary
    replans; ``drift_factor`` widens or narrows the re-costing band (see the
    module docstring).
    """

    __slots__ = (
        "_db",
        "_plans",
        "_cardinalities",
        "_stats",
        "_recost_armed",
        "_base_drift_factor",
        "_noop_streak",
        "drift_factor",
    )

    def __init__(
        self,
        db: BaseDatabase,
        plans: Dict[Hashable, JoinPlan] | None = None,
        stats=None,
        drift_factor: float = DRIFT_FACTOR,
    ) -> None:
        self._db = db
        self._plans: Dict[Hashable, JoinPlan] = plans if plans is not None else {}
        self._cardinalities: Dict[tuple[str, bool], int] = {}
        self._stats = stats
        #: Drift checks only arm after the first :meth:`begin_round` on *this*
        #: planner: a fresh planner over a different database instance must
        #: not re-cost plans a sibling put into a shared cache (plans stay
        #: permanent for round-less consumers like the trigger probes).
        self._recost_armed = False
        self._base_drift_factor = drift_factor
        #: Consecutive rebuilds that kept the old join order (see module
        #: docstring, *Adaptive drift band*).
        self._noop_streak = 0
        self.drift_factor = drift_factor

    # -- cardinality estimates -------------------------------------------------

    def _cardinality(self, relation: str, delta: bool, hypothetical: bool) -> int:
        """Extent size the atom will scan, cached at first use."""
        if delta and hypothetical:
            return self._cardinality(relation, False, False) + self._cardinality(
                relation, True, False,
            )
        key = (relation, delta)
        size = self._cardinalities.get(key)
        if size is None:
            size = (
                self._db.count_delta(relation)
                if delta
                else self._db.count_active(relation)
            )
            self._cardinalities[key] = size
        return size

    # -- planning ---------------------------------------------------------------

    def begin_round(self) -> None:
        """Mark a round boundary: drop the cardinality cache so the next
        :meth:`plan` request re-reads extents and can detect drift.

        Called by the semi-naive frontier loop (and the incremental stage
        discovery) before each delta round; cheap — cardinality reads within
        the round stay memoised.  The first call also arms drift re-costing
        for this planner; until then cached plans are returned untouched.
        """
        self._cardinalities.clear()
        self._recost_armed = True

    def plan(
        self, rule: Rule, seed: int | None = None, hypothetical: bool = False,
    ) -> JoinPlan:
        """The join order for ``rule``, optionally seeded at body atom ``seed``.

        After :meth:`begin_round` has armed re-costing, a cached plan is
        returned as-is unless its cost snapshot has drifted past the
        :attr:`drift_factor` band, in which case it is re-costed in place
        (shared caches see the refreshed plan too) and the rebuild is counted
        in ``stats.replans``.  An unarmed planner (no round boundary crossed
        yet) never re-costs, so sharing a plan cache across database
        instances of different sizes cannot make round-less consumers thrash
        each other's plans.
        """
        key = plan_key(rule, seed, hypothetical)
        cached = self._plans.get(key)
        if cached is not None and not (
            self._recost_armed and self._drifted(cached, hypothetical)
        ):
            return cached
        plan = self._build_plan(rule, seed, hypothetical)
        self._plans[key] = plan
        if cached is not None:
            self._record_replan_outcome(
                changed_order=plan.order != cached.order or plan.kind != cached.kind,
            )
        return plan

    @property
    def stats(self):
        """The :class:`~repro.datalog.context.QueryStats` sink, or None."""
        return self._stats

    def _record_replan_outcome(self, changed_order: bool) -> None:
        """Adapt the drift band to whether the rebuild changed the join order.

        Rebuilds that keep the order are wasted cardinality reads; after
        :data:`NOOP_STREAK_TO_WIDEN` consecutive no-ops the band doubles (to at
        most :data:`MAX_DRIFT_FACTOR`) so the next drift of the same magnitude
        no longer triggers a rebuild.  An order-changing rebuild proves the
        signal useful and resets the band to its base value.
        """
        if changed_order:
            self._noop_streak = 0
            self.drift_factor = self._base_drift_factor
        else:
            self._noop_streak += 1
            if self._noop_streak >= NOOP_STREAK_TO_WIDEN:
                self.drift_factor = min(self.drift_factor * 2.0, MAX_DRIFT_FACTOR)
        if self._stats is not None:
            self._stats.replans += 1
            if not changed_order:
                self._stats.noop_replans += 1
            self._stats.drift_factor = self.drift_factor

    def _drifted(self, plan: JoinPlan, hypothetical: bool) -> bool:
        """True when some extent of ``plan``'s snapshot drifted past the band."""
        factor = self.drift_factor
        for (relation, delta), old in plan.cost_snapshot:
            new = self._cardinality(relation, delta, hypothetical)
            low, high = max(old, 1), max(new, 1)
            if low > high:
                low, high = high, low
            if high >= factor * low:
                return True
        return False

    def _build_plan(self, rule: Rule, seed: int | None, hypothetical: bool) -> JoinPlan:
        body = rule.body
        bound: set[str] = set()
        order: list[int] = []
        #: Extents read while costing, keyed (relation, delta) — the snapshot
        #: round-boundary re-costing compares against.
        costed: Dict[tuple[str, bool], int] = {}
        if seed is not None:
            order.append(seed)
            bound.update(body[seed].variable_names())
        remaining = [index for index in range(len(body)) if index != seed]
        while remaining:
            best = None
            best_score: tuple | None = None
            for index in remaining:
                atom = body[index]
                connected = 0
                for term in atom.terms:
                    if isinstance(term, Constant) or (
                        isinstance(term, Variable) and term.name in bound
                    ):
                        connected += 1
                size = self._cardinality(atom.relation, atom.is_delta, hypothetical)
                costed[(atom.relation, atom.is_delta)] = size
                # Highest connectivity first, then smallest extent, then body
                # order; negations make a single min() comparison work.
                score = (-connected, size, index)
                if best_score is None or score < best_score:
                    best, best_score = index, score
            assert best is not None
            order.append(best)
            bound.update(body[best].variable_names())
            remaining.remove(best)
        kind, var_order, width = self._classify(rule, seed, hypothetical)
        return JoinPlan(
            order=tuple(order),
            seed=seed,
            cost_snapshot=tuple(sorted(costed.items())),
            kind=kind,
            var_order=var_order,
            width=width,
        )

    # -- plan-kind classification ----------------------------------------------

    def _classify(
        self, rule: Rule, seed: int | None, hypothetical: bool,
    ) -> tuple[str, Tuple[str, ...], float]:
        """Pick ``(kind, var_order, width)`` for one plan build.

        Acyclic bodies (GYO reduction empties the join hypergraph) always stay
        binary unless forced; cyclic ones go wcoj when the AGM estimate of
        the cyclic core beats the binary plan's first-join estimate.
        Hypothetical plans are always binary (wcoj tries cover single
        extents, not active ∪ delta).
        """
        body = rule.body
        if hypothetical or len(body) < 2:
            return PLAN_BINARY, (), 1.0
        core = cyclic_core(rule)
        if self._stats is not None:
            self._stats.width_estimates += 1
        forced = env_forced_plan()
        if forced == PLAN_BINARY:
            return PLAN_BINARY, (), 1.0
        width = (len(core) if core else len(body)) / 2.0
        if forced == PLAN_WCOJ:
            kind = PLAN_WCOJ
        elif not core:
            kind = PLAN_BINARY
        else:
            sizes = sorted(
                max(
                    self._cardinality(atom.relation, atom.is_delta, hypothetical), 1
                )
                for atom in body
            )
            binary_estimate = float(sizes[0] * sizes[1])
            kind = (
                PLAN_WCOJ
                if self._agm_estimate(rule, core, hypothetical) <= binary_estimate
                else PLAN_BINARY
            )
        if kind != PLAN_WCOJ:
            return PLAN_BINARY, (), 1.0
        if self._stats is not None:
            self._stats.wcoj_rules += 1
        return PLAN_WCOJ, self._variable_order(rule, seed), width

    def _agm_estimate(
        self, rule: Rule, core: Tuple[int, ...], hypothetical: bool,
    ) -> float:
        """AGM-style output estimate: extent product of a greedy edge cover.

        A greedy weighted set cover of the core's variables (edge weight =
        ``log size``, benefit = newly covered variables) approximates the
        optimal fractional edge cover whose extent product the AGM bound
        multiplies out; exact for the symmetric cliques and cycles we care
        about (triangle → N², matching the binary estimate, so ties go wcoj).
        """
        body = rule.body
        sizes = {
            index: max(
                self._cardinality(
                    body[index].relation, body[index].is_delta, hypothetical
                ),
                1,
            )
            for index in core
        }
        uncovered: set[str] = set()
        for index in core:
            uncovered |= body[index].variable_names()
        estimate = 1.0
        while uncovered:
            best = None
            best_score: tuple | None = None
            for index in core:
                covers = len(uncovered & body[index].variable_names())
                if not covers:
                    continue
                score = (math.log(sizes[index]) / covers, index)
                if best_score is None or score < best_score:
                    best, best_score = index, score
            if best is None:  # pragma: no cover - core vars always coverable
                break
            estimate *= sizes[best]
            uncovered -= body[best].variable_names()
        return estimate

    @staticmethod
    def _variable_order(rule: Rule, seed: int | None) -> Tuple[str, ...]:
        """Global elimination order: seed variables first (they arrive bound
        with the seed fact), then descending atom-degree, name as tie-break."""
        body = rule.body
        degree: Dict[str, int] = {}
        for atom in body:
            for name in atom.variable_names():
                degree[name] = degree.get(name, 0) + 1
        order: list[str] = []
        if seed is not None:
            for term in body[seed].terms:
                if isinstance(term, Variable) and term.name not in order:
                    order.append(term.name)
        for name in sorted(degree, key=lambda n: (-degree[n], n)):
            if name not in order:
                order.append(name)
        return tuple(order)
