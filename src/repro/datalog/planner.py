"""Per-rule join planning for the tuple-at-a-time evaluator.

The naive evaluator re-picks "the most constrained remaining atom" at every
recursion node of every assignment search.  That scan is quadratic in the body
length per produced binding and, worse, ignores relation sizes entirely.  This
module computes a **static join order once per (rule, seed atom)** and caches
it, in the spirit of the classic selectivity-driven planners (and of the
worst-case-optimal join literature, where the variable/atom order is fixed up
front from the query structure):

* atoms whose variables are already bound (connected to the prefix) are
  preferred — they act as hash-joins on the per-attribute indexes rather than
  cross products;
* among equally connected atoms the one over the smallest extent comes first,
  so intermediate results stay small;
* ties fall back to body order for determinism.

A plan is keyed by the rule's *structure* (relations, delta flags and variable
positions) rather than by the rule object, so rules that differ only in the
constant values they mention — e.g. the per-event probe rules the trigger
baseline builds, or the per-tuple deletion requests of Section 3.6 — share a
single cached plan.

Round-boundary re-costing
-------------------------

A cached plan remembers the cardinalities it was costed with
(:attr:`JoinPlan.cost_snapshot`).  Delta extents start near-empty and can grow
by orders of magnitude across a deep cascade, so a join order that was right
in round 2 may be badly wrong by round 10.  The semi-naive frontier loop calls
:meth:`JoinPlanner.begin_round` at every round boundary, which drops the
planner's per-round cardinality cache; the next :meth:`JoinPlanner.plan`
request for a cached plan then compares the *current* extents against the
snapshot and rebuilds the plan when any relation drifted past the
:data:`DRIFT_FACTOR` band (in either direction).  Rebuilt plans replace their
predecessor in the (possibly context-shared) structural cache — sharing is
preserved, only the costing is refreshed — and every rebuild is recorded in
:attr:`~repro.datalog.context.QueryStats.replans` when the planner was created
through an :class:`~repro.datalog.context.EvalContext`.  Without a
``begin_round`` call the cardinality cache never refreshes and the planner
behaves exactly as before (plans are permanent).

Adaptive drift band
-------------------

Re-costing is only worth its cardinality reads when the rebuilt plan actually
changes the join order.  The planner therefore tracks the *outcome* of every
rebuild: a rebuild that kept the old order is a **no-op replan**
(:attr:`~repro.datalog.context.QueryStats.noop_replans`), and after
:data:`NOOP_STREAK_TO_WIDEN` consecutive no-ops the band doubles (up to
:data:`MAX_DRIFT_FACTOR`), so a workload whose extents swing wildly without
ever changing the optimal order stops paying for rebuilds.  A rebuild that
*does* change the order resets the band to the base :data:`DRIFT_FACTOR` —
the drift signal proved informative again.  The band currently in effect is
exposed through :attr:`~repro.datalog.context.QueryStats.drift_factor` when
the planner came from an :class:`~repro.datalog.context.EvalContext`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Tuple

from repro.datalog.ast import Constant, Rule, Variable
from repro.storage.database import BaseDatabase

#: Marker used in plan keys for constant positions (the value is irrelevant
#: to the plan: any constant is an equality constraint on that position).
_CONST = "\0const"

#: Re-cost a cached plan when some scanned extent grew or shrank by at least
#: this factor relative to the plan's cost snapshot.  Join orders only change
#: on large relative swings (the planner compares sizes, not estimates), so a
#: wide band keeps replans rare and ping-ponging impossible within a round.
DRIFT_FACTOR = 4.0

#: Consecutive no-op replans (rebuilds that kept the join order) after which
#: the drift band widens — and keeps widening on every further no-op.
NOOP_STREAK_TO_WIDEN = 2

#: Ceiling for the adaptively widened drift band.
MAX_DRIFT_FACTOR = 64.0


@dataclass(frozen=True)
class JoinPlan:
    """A static join order for one rule body.

    Attributes
    ----------
    order:
        Body-atom indices in the order the evaluator should match them.  When
        the plan was seeded, the seed atom's index comes first.
    seed:
        The body-atom index the plan assumes is matched first (from the
        delta frontier), or None for a full evaluation plan.
    cost_snapshot:
        The ``((relation, delta), size)`` cardinalities the plan was costed
        with, used by round-boundary re-costing to detect drift.  Empty for
        hand-built plans (never re-costed).
    """

    order: Tuple[int, ...]
    seed: int | None = None
    cost_snapshot: Tuple[Tuple[Tuple[str, bool], int], ...] = field(
        default=(), compare=False
    )


def _atom_shape(atom) -> tuple:
    """The plan-relevant shape of an atom: relation, delta flag, term pattern."""
    return (
        atom.relation,
        atom.is_delta,
        tuple(
            term.name if isinstance(term, Variable) else _CONST for term in atom.terms
        ),
    )


def plan_key(rule: Rule, seed: int | None, hypothetical: bool) -> Hashable:
    """Cache key identifying every rule with the same body structure."""
    return (
        tuple(_atom_shape(atom) for atom in rule.body),
        seed,
        hypothetical,
    )


class JoinPlanner:
    """Computes and caches :class:`JoinPlan` objects against one database.

    One planner is created per evaluation session (a closure run, a trigger
    cascade, a provenance build...) so the cardinalities it reads reflect the
    instance being evaluated; plans are cached on first use and reused for
    every later round.

    ``plans`` optionally injects a shared plan dictionary — the handle an
    :class:`~repro.datalog.context.EvalContext` passes so that the planners of
    one ``RepairEngine.compare()`` run (one per semantics, each over its own
    clone) reuse each other's join orders.  Plans are keyed purely on rule
    *structure*, so sharing them across clones of the same database is sound;
    only the cardinality snapshots stay per-planner.  ``stats`` (a
    :class:`~repro.datalog.context.QueryStats`) records round-boundary
    replans; ``drift_factor`` widens or narrows the re-costing band (see the
    module docstring).
    """

    __slots__ = (
        "_db",
        "_plans",
        "_cardinalities",
        "_stats",
        "_recost_armed",
        "_base_drift_factor",
        "_noop_streak",
        "drift_factor",
    )

    def __init__(
        self,
        db: BaseDatabase,
        plans: Dict[Hashable, JoinPlan] | None = None,
        stats=None,
        drift_factor: float = DRIFT_FACTOR,
    ) -> None:
        self._db = db
        self._plans: Dict[Hashable, JoinPlan] = plans if plans is not None else {}
        self._cardinalities: Dict[tuple[str, bool], int] = {}
        self._stats = stats
        #: Drift checks only arm after the first :meth:`begin_round` on *this*
        #: planner: a fresh planner over a different database instance must
        #: not re-cost plans a sibling put into a shared cache (plans stay
        #: permanent for round-less consumers like the trigger probes).
        self._recost_armed = False
        self._base_drift_factor = drift_factor
        #: Consecutive rebuilds that kept the old join order (see module
        #: docstring, *Adaptive drift band*).
        self._noop_streak = 0
        self.drift_factor = drift_factor

    # -- cardinality estimates -------------------------------------------------

    def _cardinality(self, relation: str, delta: bool, hypothetical: bool) -> int:
        """Extent size the atom will scan, cached at first use."""
        if delta and hypothetical:
            return self._cardinality(relation, False, False) + self._cardinality(
                relation, True, False
            )
        key = (relation, delta)
        size = self._cardinalities.get(key)
        if size is None:
            size = (
                self._db.count_delta(relation)
                if delta
                else self._db.count_active(relation)
            )
            self._cardinalities[key] = size
        return size

    # -- planning ---------------------------------------------------------------

    def begin_round(self) -> None:
        """Mark a round boundary: drop the cardinality cache so the next
        :meth:`plan` request re-reads extents and can detect drift.

        Called by the semi-naive frontier loop (and the incremental stage
        discovery) before each delta round; cheap — cardinality reads within
        the round stay memoised.  The first call also arms drift re-costing
        for this planner; until then cached plans are returned untouched.
        """
        self._cardinalities.clear()
        self._recost_armed = True

    def plan(
        self, rule: Rule, seed: int | None = None, hypothetical: bool = False
    ) -> JoinPlan:
        """The join order for ``rule``, optionally seeded at body atom ``seed``.

        After :meth:`begin_round` has armed re-costing, a cached plan is
        returned as-is unless its cost snapshot has drifted past the
        :attr:`drift_factor` band, in which case it is re-costed in place
        (shared caches see the refreshed plan too) and the rebuild is counted
        in ``stats.replans``.  An unarmed planner (no round boundary crossed
        yet) never re-costs, so sharing a plan cache across database
        instances of different sizes cannot make round-less consumers thrash
        each other's plans.
        """
        key = plan_key(rule, seed, hypothetical)
        cached = self._plans.get(key)
        if cached is not None and not (
            self._recost_armed and self._drifted(cached, hypothetical)
        ):
            return cached
        plan = self._build_plan(rule, seed, hypothetical)
        self._plans[key] = plan
        if cached is not None:
            self._record_replan_outcome(changed_order=plan.order != cached.order)
        return plan

    def _record_replan_outcome(self, changed_order: bool) -> None:
        """Adapt the drift band to whether the rebuild changed the join order.

        Rebuilds that keep the order are wasted cardinality reads; after
        :data:`NOOP_STREAK_TO_WIDEN` consecutive no-ops the band doubles (to at
        most :data:`MAX_DRIFT_FACTOR`) so the next drift of the same magnitude
        no longer triggers a rebuild.  An order-changing rebuild proves the
        signal useful and resets the band to its base value.
        """
        if changed_order:
            self._noop_streak = 0
            self.drift_factor = self._base_drift_factor
        else:
            self._noop_streak += 1
            if self._noop_streak >= NOOP_STREAK_TO_WIDEN:
                self.drift_factor = min(self.drift_factor * 2.0, MAX_DRIFT_FACTOR)
        if self._stats is not None:
            self._stats.replans += 1
            if not changed_order:
                self._stats.noop_replans += 1
            self._stats.drift_factor = self.drift_factor

    def _drifted(self, plan: JoinPlan, hypothetical: bool) -> bool:
        """True when some extent of ``plan``'s snapshot drifted past the band."""
        factor = self.drift_factor
        for (relation, delta), old in plan.cost_snapshot:
            new = self._cardinality(relation, delta, hypothetical)
            low, high = max(old, 1), max(new, 1)
            if low > high:
                low, high = high, low
            if high >= factor * low:
                return True
        return False

    def _build_plan(self, rule: Rule, seed: int | None, hypothetical: bool) -> JoinPlan:
        body = rule.body
        bound: set[str] = set()
        order: list[int] = []
        #: Extents read while costing, keyed (relation, delta) — the snapshot
        #: round-boundary re-costing compares against.
        costed: Dict[tuple[str, bool], int] = {}
        if seed is not None:
            order.append(seed)
            bound.update(body[seed].variable_names())
        remaining = [index for index in range(len(body)) if index != seed]
        while remaining:
            best = None
            best_score: tuple | None = None
            for index in remaining:
                atom = body[index]
                connected = 0
                for term in atom.terms:
                    if isinstance(term, Constant) or (
                        isinstance(term, Variable) and term.name in bound
                    ):
                        connected += 1
                size = self._cardinality(atom.relation, atom.is_delta, hypothetical)
                costed[(atom.relation, atom.is_delta)] = size
                # Highest connectivity first, then smallest extent, then body
                # order; negations make a single min() comparison work.
                score = (-connected, size, index)
                if best_score is None or score < best_score:
                    best, best_score = index, score
            assert best is not None
            order.append(best)
            bound.update(body[best].variable_names())
            remaining.remove(best)
        return JoinPlan(
            order=tuple(order),
            seed=seed,
            cost_snapshot=tuple(sorted(costed.items())),
        )
