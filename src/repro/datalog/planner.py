"""Per-rule join planning for the tuple-at-a-time evaluator.

The naive evaluator re-picks "the most constrained remaining atom" at every
recursion node of every assignment search.  That scan is quadratic in the body
length per produced binding and, worse, ignores relation sizes entirely.  This
module computes a **static join order once per (rule, seed atom)** and caches
it, in the spirit of the classic selectivity-driven planners (and of the
worst-case-optimal join literature, where the variable/atom order is fixed up
front from the query structure):

* atoms whose variables are already bound (connected to the prefix) are
  preferred — they act as hash-joins on the per-attribute indexes rather than
  cross products;
* among equally connected atoms the one over the smallest extent comes first,
  so intermediate results stay small;
* ties fall back to body order for determinism.

A plan is keyed by the rule's *structure* (relations, delta flags and variable
positions) rather than by the rule object, so rules that differ only in the
constant values they mention — e.g. the per-event probe rules the trigger
baseline builds, or the per-tuple deletion requests of Section 3.6 — share a
single cached plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Tuple

from repro.datalog.ast import Constant, Rule, Variable
from repro.storage.database import BaseDatabase

#: Marker used in plan keys for constant positions (the value is irrelevant
#: to the plan: any constant is an equality constraint on that position).
_CONST = "\0const"


@dataclass(frozen=True)
class JoinPlan:
    """A static join order for one rule body.

    Attributes
    ----------
    order:
        Body-atom indices in the order the evaluator should match them.  When
        the plan was seeded, the seed atom's index comes first.
    seed:
        The body-atom index the plan assumes is matched first (from the
        delta frontier), or None for a full evaluation plan.
    """

    order: Tuple[int, ...]
    seed: int | None = None


def _atom_shape(atom) -> tuple:
    """The plan-relevant shape of an atom: relation, delta flag, term pattern."""
    return (
        atom.relation,
        atom.is_delta,
        tuple(
            term.name if isinstance(term, Variable) else _CONST for term in atom.terms
        ),
    )


def plan_key(rule: Rule, seed: int | None, hypothetical: bool) -> Hashable:
    """Cache key identifying every rule with the same body structure."""
    return (
        tuple(_atom_shape(atom) for atom in rule.body),
        seed,
        hypothetical,
    )


class JoinPlanner:
    """Computes and caches :class:`JoinPlan` objects against one database.

    One planner is created per evaluation session (a closure run, a trigger
    cascade, a provenance build...) so the cardinalities it reads reflect the
    instance being evaluated; plans are cached on first use and reused for
    every later round.

    ``plans`` optionally injects a shared plan dictionary — the handle an
    :class:`~repro.datalog.context.EvalContext` passes so that the planners of
    one ``RepairEngine.compare()`` run (one per semantics, each over its own
    clone) reuse each other's join orders.  Plans are keyed purely on rule
    *structure*, so sharing them across clones of the same database is sound;
    only the cardinality snapshots stay per-planner.
    """

    __slots__ = ("_db", "_plans", "_cardinalities")

    def __init__(
        self, db: BaseDatabase, plans: Dict[Hashable, JoinPlan] | None = None
    ) -> None:
        self._db = db
        self._plans: Dict[Hashable, JoinPlan] = plans if plans is not None else {}
        self._cardinalities: Dict[tuple[str, bool], int] = {}

    # -- cardinality estimates -------------------------------------------------

    def _cardinality(self, relation: str, delta: bool, hypothetical: bool) -> int:
        """Extent size the atom will scan, cached at first use."""
        if delta and hypothetical:
            return self._cardinality(relation, False, False) + self._cardinality(
                relation, True, False
            )
        key = (relation, delta)
        size = self._cardinalities.get(key)
        if size is None:
            size = (
                self._db.count_delta(relation)
                if delta
                else self._db.count_active(relation)
            )
            self._cardinalities[key] = size
        return size

    # -- planning ---------------------------------------------------------------

    def plan(
        self, rule: Rule, seed: int | None = None, hypothetical: bool = False
    ) -> JoinPlan:
        """The join order for ``rule``, optionally seeded at body atom ``seed``."""
        key = plan_key(rule, seed, hypothetical)
        cached = self._plans.get(key)
        if cached is not None:
            return cached
        plan = self._build_plan(rule, seed, hypothetical)
        self._plans[key] = plan
        return plan

    def _build_plan(self, rule: Rule, seed: int | None, hypothetical: bool) -> JoinPlan:
        body = rule.body
        bound: set[str] = set()
        order: list[int] = []
        if seed is not None:
            order.append(seed)
            bound.update(body[seed].variable_names())
        remaining = [index for index in range(len(body)) if index != seed]
        while remaining:
            best = None
            best_score: tuple | None = None
            for index in remaining:
                atom = body[index]
                connected = 0
                for term in atom.terms:
                    if isinstance(term, Constant) or (
                        isinstance(term, Variable) and term.name in bound
                    ):
                        connected += 1
                size = self._cardinality(atom.relation, atom.is_delta, hypothetical)
                # Highest connectivity first, then smallest extent, then body
                # order; negations make a single min() comparison work.
                score = (-connected, size, index)
                if best_score is None or score < best_score:
                    best, best_score = index, score
            assert best is not None
            order.append(best)
            bound.update(body[best].variable_names())
            remaining.remove(best)
        return JoinPlan(order=tuple(order), seed=seed)
