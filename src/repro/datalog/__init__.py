"""Non-recursive datalog engine and the delta-rule framework built on it.

The paper (Section 2) uses standard non-recursive (bounded) datalog programs
whose intensional relations are all *delta relations* ``ΔR``.  This package
provides:

* :mod:`repro.datalog.ast` — terms, atoms, comparisons, rules, programs;
* :mod:`repro.datalog.parser` — a textual syntax for rules and programs;
* :mod:`repro.datalog.delta` — delta programs: validation per Definition 3.1,
  deletion-request rules (the paper's rule (0)), DC translation hooks;
* :mod:`repro.datalog.evaluation` — assignment enumeration, the naive oracle
  closure, and the ``engine=`` dispatch;
* :mod:`repro.datalog.seminaive` — the semi-naive, delta-driven fixpoint
  engine (the default for in-memory databases);
* :mod:`repro.datalog.sql_seminaive` — the SQL-level semi-naive engine for
  SQLite-backed databases (frontier tables + generation windows, single-pass
  staged rounds);
* :mod:`repro.datalog.context` — the shared evaluation context: cross-run
  plan/variant caches, assignment observers, query statistics;
* :mod:`repro.datalog.planner` — per-rule join planning with cached plans;
* :mod:`repro.datalog.analysis` — dependency graphs, recursion detection,
  relation stratification;
* :mod:`repro.datalog.sql_compiler` — compilation of rule bodies to SQL joins
  for the SQLite backend, naive and delta-rewritten.
"""

from repro.datalog.ast import (
    Atom,
    Comparison,
    Constant,
    Program,
    Rule,
    Term,
    Variable,
)
from repro.datalog.delta import DeltaProgram, deletion_request_rule
from repro.datalog.parser import parse_program, parse_rule
from repro.datalog.evaluation import (
    Assignment,
    ClosureResult,
    ENGINE_AUTO,
    ENGINE_NAIVE,
    ENGINE_SEMI_NAIVE,
    ENGINE_SHARDED,
    derive_closure,
    find_assignments,
    resolve_engine,
    run_closure,
    validate_engine,
)
from repro.datalog.context import EvalContext, QueryStats
from repro.datalog.planner import JoinPlan, JoinPlanner

__all__ = [
    "Term",
    "Variable",
    "Constant",
    "Atom",
    "Comparison",
    "Rule",
    "Program",
    "DeltaProgram",
    "deletion_request_rule",
    "parse_program",
    "parse_rule",
    "Assignment",
    "ClosureResult",
    "find_assignments",
    "derive_closure",
    "run_closure",
    "resolve_engine",
    "validate_engine",
    "EvalContext",
    "QueryStats",
    "JoinPlan",
    "JoinPlanner",
    "ENGINE_AUTO",
    "ENGINE_NAIVE",
    "ENGINE_SEMI_NAIVE",
    "ENGINE_SHARDED",
]
