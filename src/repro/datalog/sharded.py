"""Sharded parallel fixpoint evaluation: hash-partitioned frontiers.

The semi-naive engines (:mod:`repro.datalog.seminaive`,
:mod:`repro.datalog.sql_seminaive`) enumerate each round's whole frontier on
one thread — and, on SQLite, one connection.  The drivers in this module keep
the exact round structure, generation stamping, exactly-once observer
delivery and :class:`~repro.datalog.context.QueryStats` accounting of those
engines, but **partition every round's work by a hash of the seed fact** and
fan the per-shard join enumeration out across a persistent worker-thread
pool:

* **SQLite** (:func:`sql_sharded_closure`): every compiled rule variant
  carries sharded execution forms
  (:attr:`~repro.datalog.sql_compiler.FrontierQuery.sharded_sql` /
  :attr:`~repro.datalog.sql_compiler.FrontierQuery.sharded_heads_sql`) whose
  shard predicate partitions the seed atom's table by ``rowid % nshards``.
  On a file-backed WAL database the per-shard SELECTs run concurrently on
  read-only sibling connections
  (:meth:`~repro.storage.sqlite_backend.SQLiteDatabase.reader_connections`)
  — CPython's sqlite3 module releases the GIL while stepping, so the joins
  genuinely overlap on multi-core machines — while the **primary connection
  serialises only the installs** (``INSERT OR IGNORE`` executemany over the
  merged shard rows) and the delta copies.  In-memory SQLite databases have
  no second connection to offer, so their shards run sequentially on the
  primary connection (same results, same accounting).
* **in-memory** (:func:`memory_sharded_closure`): the round's frontier seeds
  (and, in round 1, the first planned atom's candidates) are hash-partitioned
  across workers; each worker enumerates its partition over the shared
  read-only indexes with the same per-rule plans, and the merge thread
  replays the per-shard results in a fixed order.

Determinism and equivalence
---------------------------

Shard execution may interleave arbitrarily, but workers only *read*: all
installs happen on the merge thread, strictly after every shard of the wave
returned, in a fixed (rule, variant/rank, shard-index) order.  The derived
delta fixpoint, the assignment set, the round count and the exactly-once
observer stream are therefore identical to the single-threaded semi-naive
engines — the differential suites check this against the naive oracle at
several shard counts, and a dedicated test pins the closure against shard /
worker permutations.

The shard and worker counts come from the
:class:`~repro.datalog.context.EvalContext` knobs (``shards=`` /
``workers=``, or the ``REPRO_SHARDS`` environment override); with
``shards=1`` the drivers degenerate to a single partition of the same
machinery.

Adaptive execution
------------------

The configured shard count is a *ceiling*, not a constant: every variant
execution first observes the size of the extent it would partition (the
previous round's install count for seeded variants, a hook-free ``COUNT`` of
the shard-axis table for round-1 variants, the partition list length in
memory) and collapses to an *effective* shard count via
:func:`~repro.datalog.planner.effective_shard_count`.  A tiny frontier — or
any run with a single worker — runs as one inline evaluation on the primary
connection/thread: no pool submit, no reader connection, and on SQLite the
byte-identical ``install_sql`` / ``sql`` statements of the semi-naive driver.
This is what makes ``engine="sharded"`` never slower than semi-naive on one
core.  The decisions are counted in
:attr:`~repro.datalog.context.QueryStats.effective_shards` /
:attr:`~repro.datalog.context.QueryStats.collapsed_rounds`.

On SQLite with reader connections the round is additionally *pipelined*:
variant *k+1*'s per-shard SELECTs are submitted to the worker pool as soon as
variant *k*'s rows have been gathered, so they stream on the readers while
the primary connection replays and installs variant *k*'s merge
(:attr:`~repro.datalog.context.QueryStats.pipelined_waves`).  Merge order
stays the pending order and rows stay in (variant, shard) order, so results,
tids and observer streams are byte-identical to the unpipelined execution.

The in-memory driver can swap its GIL-bound thread pool for an opt-in
``multiprocessing`` pool (``EvalContext(process_pool=True)`` /
``REPRO_PROCESS_POOL=1``, see :mod:`repro.datalog.process_pool`): workers
hold a pickled replica of the database, receive each round's frontier
partitions as pickled fact batches, and the merge thread records their
per-job results in the exact order the thread pool would — byte-identical
closures, assignment streams and tids at any worker count.
"""

from __future__ import annotations

import threading
import zlib
from concurrent.futures import ThreadPoolExecutor, wait as futures_wait
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from repro.datalog.ast import Program, Rule
from repro.datalog.context import EvalContext
from repro.datalog.evaluation import (
    Assignment,
    ClosureResult,
    ENGINE_SHARDED,
    _bound_positions,
    default_candidates,
    planned_search,
)
from repro.datalog.sql_compiler import (
    FrontierQuery,
    assignments_from_rows,
    compile_frontier_rule,
    delta_copy_sql,
)
from repro.datalog.sql_seminaive import stage_variant_rows, staged_row_batches
from repro.exceptions import EvaluationError
from repro.storage.database import BaseDatabase
from repro.storage.facts import Fact
from repro.storage.sqlite_backend import (
    SQLiteDatabase,
    active_table,
    frontier_table,
)

# ---------------------------------------------------------------------------
# Persistent worker pool
# ---------------------------------------------------------------------------

_pool_lock = threading.Lock()
_pool: ThreadPoolExecutor | None = None
_pool_size = 0
# Wave leases per pool: a retired pool (replaced by a larger one) is only shut
# down once its last leased wave drained — a concurrent closure that picked the
# pool up before the swap keeps submitting to a live executor instead of
# hitting "cannot schedule new futures after shutdown".
_pool_leases: Dict[ThreadPoolExecutor, int] = {}


def _ensure_pool(workers: int) -> ThreadPoolExecutor:
    """Grow the shared pool to ``workers`` threads.  Caller holds ``_pool_lock``."""
    global _pool, _pool_size
    if _pool is None or _pool_size < workers:
        previous = _pool
        _pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-shard",
        )
        _pool_size = workers
        if previous is not None and not _pool_leases.get(previous):
            # No wave holds a lease on the old pool: the idle threads can exit
            # now instead of leaking for the process lifetime.  A leased pool
            # is shut down by the last _release_pool instead.
            previous.shutdown(wait=False)
    return _pool


def worker_pool(workers: int) -> ThreadPoolExecutor:
    """The process-wide persistent worker pool, grown to ``workers`` threads.

    One pool serves every sharded closure of the process (threads are
    recycled across rounds, runs and databases); asking for more workers than
    the pool currently has replaces it with a larger one.  Worker threads
    only ever *read* the database being evaluated, so sharing the pool across
    concurrent closures is safe; the pool size is only an upper bound — each
    wave caps its own concurrency at the run's ``workers`` knob (see
    :func:`_run_wave`).  Waves acquire the pool through a per-wave lease
    (:func:`_acquire_pool` / :func:`_release_pool`): when a concurrent
    closure grows the pool mid-run, the retired executor stays alive until
    the last wave holding it drains, then shuts down.
    """
    with _pool_lock:
        return _ensure_pool(workers)


def _acquire_pool(workers: int) -> ThreadPoolExecutor:
    """Lease the shared pool (grown to ``workers``) for one wave."""
    with _pool_lock:
        pool = _ensure_pool(workers)
        _pool_leases[pool] = _pool_leases.get(pool, 0) + 1
        return pool


def _release_pool(pool: ThreadPoolExecutor) -> None:
    """Return a wave's lease; shut the pool down if it was retired meanwhile."""
    with _pool_lock:
        remaining = _pool_leases.get(pool, 0) - 1
        if remaining > 0:
            _pool_leases[pool] = remaining
            return
        _pool_leases.pop(pool, None)
        if pool is not _pool:
            pool.shutdown(wait=False)


def _assignment_order(assignment: Assignment) -> tuple:
    """Canonical in-shard replay order for one job's assignments.

    Workers enumerate joins over hash-based indexes, whose iteration order is
    salted for strings (``PYTHONHASHSEED``): replaying each shard's results in
    enumeration order would deliver a process-dependent observer stream even
    though the merged *set* is deterministic.  Sorting every job's results by
    the used facts (one rule per job, so the tuples are comparable) makes the
    full delivery stream reproducible across processes.
    """
    return tuple(
        (atom.relation, atom.is_delta, item.sort_key())
        for atom, item in assignment.used
    )


#: Public name of the canonical per-job replay order — the incremental
#: maintenance drivers sort *both* their serial and their sharded record
#: streams with it, which is what makes sharded maintenance byte-identical
#: to the serial drivers at any shard/worker count.
def assignment_replay_order(assignment: Assignment) -> tuple:
    """Alias of :func:`_assignment_order` for out-of-module callers."""
    return _assignment_order(assignment)


def fact_shard(item: Fact, nshards: int) -> int:
    """The hash partition of ``item`` among ``nshards`` shards (in-memory).

    The hash is a CRC-32 fold over a typed canonical encoding of the fact's
    relation and values — **stable across processes and interpreter runs**,
    unlike the builtin ``hash()``, which salts strings per process
    (``PYTHONHASHSEED``).  Routing must not depend on the process: file-backed
    resumes and CI-seed replays reproduce the exact tid and observer streams
    only if every process deals the same fact to the same shard.  Tids are
    ignored, matching :class:`~repro.storage.facts.Fact` equality; values are
    tagged with their type name so e.g. ``1`` and ``"1"`` hash apart, and the
    SQLite path is unaffected (it partitions by ``rowid % :nshards`` inside
    the database).
    """
    digest = zlib.crc32(item.relation.encode("utf-8"))
    for value in item.values:
        encoded = f"{type(value).__name__}:{value!r};".encode("utf-8")
        digest = zlib.crc32(encoded, digest)
    return digest % nshards


def partition_facts(items: Iterable[Fact], nshards: int) -> List[List[Fact]]:
    """Deal ``items`` into their :func:`fact_shard` partitions.

    The shared partitioning step of the in-memory sharded closure and the
    sharded maintenance drivers: each returned list holds one shard's facts
    in the input's iteration order, and the concatenation over shards is a
    permutation of the input.
    """
    partitions: List[List[Fact]] = [[] for _ in range(nshards)]
    for item in items:
        partitions[fact_shard(item, nshards)].append(item)
    return partitions


class _WaveHandle:
    """An in-flight wave of shard jobs submitted to the worker pool.

    Holds the pool lease from submission until :meth:`results` (or
    :meth:`abandon`) completes, so a concurrent closure growing the shared
    pool can never shut the executor down beneath the wave's futures.  The
    pipelined SQLite driver keeps one handle outstanding while the primary
    connection merges the previous variant.
    """

    __slots__ = ("_pool", "_futures", "_count", "_done")

    def __init__(self, pool, futures, count: int) -> None:
        self._pool = pool
        self._futures = futures
        self._count = count
        self._done = False

    def results(self) -> List[object]:
        """Block until every job finished; results in job order."""
        try:
            gathered: List[object] = [None] * self._count
            for future in self._futures:
                for index, result in future.result():
                    gathered[index] = result
            return gathered
        except BaseException:
            # A failing slice must not propagate while sibling slices still
            # execute: the memory driver's ``finally`` would detach candidate
            # observers under live workers, and the released pool lease could
            # shut the executor down beneath them.  Cancel what has not
            # started and drain what has before re-raising.
            for future in self._futures:
                future.cancel()
            futures_wait(self._futures)
            raise
        finally:
            self._finish()

    def abandon(self) -> None:
        """Cancel/drain the wave without consuming results (error paths)."""
        for future in self._futures:
            future.cancel()
        futures_wait(self._futures)
        self._finish()

    def _finish(self) -> None:
        if not self._done:
            self._done = True
            _release_pool(self._pool)


def _submit_wave(
    jobs: Sequence[Callable[[], object]], workers: int,
) -> _WaveHandle:
    """Submit one wave of shard jobs to the pool without waiting.

    The jobs are dealt round-robin into at most ``workers`` slices and each
    slice runs sequentially inside one submitted task, so a run configured
    with ``workers=2`` never executes more than two jobs at once even after
    an earlier run grew the pool.  Unlike :func:`_run_wave` even a single
    job is submitted (never run inline): the caller wants the overlap, not
    the result — the pipelined driver merges on the primary connection while
    the handle's jobs stream on the readers.
    """
    pool = _acquire_pool(workers)
    slices = [
        list(range(start, len(jobs), workers))
        for start in range(min(workers, len(jobs)))
    ]

    def run_slice(indices: List[int]) -> List[tuple]:
        return [(index, jobs[index]()) for index in indices]

    return _WaveHandle(pool, [pool.submit(run_slice, chunk) for chunk in slices], len(jobs))


def _run_wave(
    jobs: Sequence[Callable[[], object]], workers: int,
) -> List[object]:
    """Run one wave of shard jobs, returning results in job order.

    Concurrency is capped at ``workers`` regardless of the shared pool's
    size (see :func:`_submit_wave`).  With one worker (or one job) the jobs
    run inline on the calling thread — no pool overhead, still the exact
    same code path.
    """
    if workers <= 1 or len(jobs) <= 1:
        return [job() for job in jobs]
    return _submit_wave(jobs, workers).results()


# ---------------------------------------------------------------------------
# SQLite driver
# ---------------------------------------------------------------------------


def _sql_variants(rule: Rule, context: EvalContext | None):
    if context is not None:
        return context.frontier_variants(rule)
    return compile_frontier_rule(rule)


def _axis_window_count(
    db: SQLiteDatabase, rule: Rule, variant: FrontierQuery, window: Dict[str, int],
) -> int:
    """Rows of the variant's shard-axis extent inside its frontier window.

    The observed size dynamic shard collapse decides from
    (:func:`~repro.datalog.planner.effective_shard_count`): the seed atom's
    window slice for seeded variants, the first body atom's bounded extent
    for the round-1 full variant.  Read through
    :meth:`~repro.storage.sqlite_backend.SQLiteDatabase.extent_count`, which
    bypasses the statement hooks — a costing read, not part of the round's
    statement discipline.
    """
    axis = rule.body[variant.seed] if variant.seed is not None else rule.body[0]
    if not axis.is_delta:
        return db.extent_count(active_table(axis.relation))
    table = frontier_table(axis.relation)
    if variant.seed is not None:
        return db.extent_count(table, "gen > :lo AND gen <= :hi", window)
    return db.extent_count(table, "gen <= :hi", window)


def sql_sharded_closure(
    db: SQLiteDatabase,
    program: Program | Iterable[Rule],
    on_assignment=None,
    max_rounds: int | None = None,
    collect_assignments: bool = True,
    context: EvalContext | None = None,
) -> ClosureResult:
    """Sharded counterpart of :func:`~repro.datalog.sql_seminaive.sql_semi_naive_closure`.

    Same rounds, same generation stamping (one fresh generation per round,
    delta copies promoting it), same observer contract.  Each round runs in
    two phases: a read-only *shard wave* — every pending variant's join,
    split into ``nshards`` partitions, executed on reader connections by the
    worker pool (or on the primary connection when the database is in-memory
    or a single worker is configured) — and a serial *merge* on the primary
    connection that replays the rows in fixed order and installs the derived
    head facts.  Without observers only the deduplicated head rows cross into
    Python; with observers the full assignment rows do (they must — observers
    consume them).
    """
    ctx = context if context is not None else EvalContext()
    nshards = ctx.shard_count()
    workers = ctx.worker_count()
    rules = list(program)
    delta_rules = [rule for rule in rules if any(atom.is_delta for atom in rule.body)]
    watched = {
        atom.relation for rule in delta_rules for atom in rule.body if atom.is_delta
    }
    copy_statements = {
        rule.head.relation: delta_copy_sql(rule.head.relation, rule.head.arity)
        for rule in rules
    }
    observing = (collect_assignments or on_assignment is not None or ctx.has_observers)
    readers = db.reader_connections(workers) if workers > 1 else None

    all_assignments: List[Assignment] = []
    seen_signatures: set[tuple] = set()

    def record(assignment: Assignment) -> None:
        signature = assignment.signature()
        if signature in seen_signatures:
            return
        seen_signatures.add(signature)
        if collect_assignments:
            all_assignments.append(assignment)
        if on_assignment is not None:
            on_assignment(assignment)
        ctx.notify(assignment)

    def variant_size(
        rule: Rule, variant: FrontierQuery, window: Dict[str, int],
        frontier: Dict[str, int],
    ) -> int:
        """Observed extent size the collapse decision for one variant uses."""
        if variant.seed_relation is not None:
            # The previous round's install count *is* the seed window's row
            # count — no query needed.
            return frontier.get(variant.seed_relation, 0)
        return _axis_window_count(db, rule, variant, window)

    def merges(index: int, effs: List[int]) -> bool:
        """True when pending[index] gathers rows and merges on the primary.

        Only genuinely fanned-out variants (``eff > 1``) gather: a collapsed
        variant runs the semi-naive driver's own discipline instead —
        ``staged_inline`` (stage + observer replay + in-SQL install) when
        observing, ``direct_install``'s unsharded ``install_sql`` otherwise —
        so a fully-collapsed round is statement-identical to the
        single-connection driver (the never-slower contract).  A non-observed
        fan-out without reader connections also skips the gather: its
        sequential ``sharded_install_sql`` per shard never brings rows into
        Python.
        """
        return effs[index] > 1 and (observing or readers is not None)

    def submit(
        pending: List[Tuple[Rule, FrontierQuery, Dict[str, int]]],
        index: int,
        effs: List[int],
    ) -> _WaveHandle | None:
        """Submit pending[index]'s per-shard SELECTs to the reader pool.

        Returns None when the variant runs inline instead: it collapsed
        (``eff <= 1``), there are no reader connections, or it is a direct
        install.  Each wave deals its ``eff`` shards round-robin across at
        most ``min(workers, eff)`` reader connections; only one wave is in
        flight at a time, so no reader is ever shared by two waves.
        """
        eff = effs[index]
        if readers is None or eff <= 1 or not merges(index, effs):
            return None
        _rule, variant, window = pending[index]
        select = variant.sharded_sql if observing else variant.sharded_heads_sql
        slots = min(workers, eff)
        slices = [list(range(slot, eff, slots)) for slot in range(slots)]

        def job(slot: int, shard_indices: List[int]):
            connection = readers[slot]
            results: Dict[int, list] = {}
            for shard in shard_indices:
                bind = variant.bind(nshards=eff, shard=shard, **window)
                results[shard] = connection.execute(select, bind).fetchall()
            return results

        return _submit_wave(
            [
                (lambda s=slot, c=chunk: job(s, c))
                for slot, chunk in enumerate(slices)
            ],
            slots,
        )

    def gather(
        pending: List[Tuple[Rule, FrontierQuery, Dict[str, int]]],
        index: int,
        effs: List[int],
        handle: _WaveHandle | None,
    ) -> List[list]:
        """Per-shard row batches for one merging (fanned-out) variant, in shard order.

        Pool waves are gathered from their handle (and their reader-executed
        statements replayed to the hooks from this thread, keeping counters
        coherent); shard fan-outs without readers run their ``sharded_sql``
        sequentially on the primary connection.  Collapsed variants never
        reach here (``merges`` routes them to the semi-naive disciplines).
        Either way the per-shard lists are the parallel-prefetch buffers
        downstream merging consumes one batch at a time, never concatenated
        into one list.
        """
        rule, variant, window = pending[index]
        eff = effs[index]
        select = variant.sharded_sql if observing else variant.sharded_heads_sql
        if handle is not None:
            by_shard: Dict[int, list] = {}
            for result in handle.results():
                by_shard.update(result)
            # Reader connections bypass ``db.execute``; replay the statements
            # to the hooks from the merge thread so counters stay coherent.
            for _ in range(eff):
                db.notify_statement_hooks(select)
            ctx.stats.shard_selects += eff
            return [by_shard[shard] for shard in range(eff)]
        ctx.stats.shard_selects += eff
        return [
            db.execute(
                select, variant.bind(nshards=eff, shard=shard, **window),
            ).fetchall()
            for shard in range(eff)
        ]

    def merge_one(
        pending: List[Tuple[Rule, FrontierQuery, Dict[str, int]]],
        index: int,
        shard_rows: List[list],
        gen: int,
        new_by_relation: Dict[str, int],
    ) -> None:
        """Merge/install one variant's gathered rows on the primary connection.

        Replays assignment rows to the observers (one shard batch at a time,
        in shard order) and installs the derived head facts with this round's
        generation stamp.  The install is an ``INSERT OR IGNORE`` executemany
        keyed on the value columns, so re-derived facts keep their
        first-arrival generation exactly like the in-SQL installs — and the
        number of *new* rows (measured via ``total_changes``) drives the next
        round's frontier test, mirroring the single-connection driver's
        change counts.
        """
        rule, variant, _window = pending[index]
        if observing:
            heads = {
                variant.head_values(row) for batch in shard_rows for row in batch
            }
            for batch in shard_rows:
                for assignment in assignments_from_rows(
                    rule, variant.atom_arities, batch,
                ):
                    record(assignment)
        else:
            heads = {row for batch in shard_rows for row in batch}
        if heads:
            before = db.connection.total_changes
            # One transaction per batch: the connection runs in autocommit
            # mode, where executemany would otherwise commit every row —
            # per-commit WAL bookkeeping dwarfs the insert itself.
            db.connection.execute("BEGIN")
            try:
                # Sorted batch order: head values are the table's primary
                # key so no two rows collide, but the *rowids* assigned
                # here become the shard axis of later rounds' partitioned
                # SELECTs — set order is salted for strings, sorted order
                # reproduces identical routing across processes.
                db.connection.executemany(
                    variant.head_insert_sql,
                    [(*head, gen) for head in sorted(heads, key=repr)],
                )
                db.connection.execute("COMMIT")
            except BaseException:
                db.connection.execute("ROLLBACK")
                raise
            installed = db.connection.total_changes - before
            db.notify_statement_hooks(variant.head_insert_sql)
            ctx.stats.shard_installs += 1
            if installed > 0:
                relation = rule.head.relation
                new_by_relation[relation] = (
                    new_by_relation.get(relation, 0) + installed
                )

    def staged_inline(
        pending: List[Tuple[Rule, FrontierQuery, Dict[str, int]]],
        index: int,
        gen: int,
        new_by_relation: Dict[str, int],
    ) -> None:
        """Collapsed observing variant: the semi-naive staged discipline verbatim.

        Stage the join once, replay the staged rows to the observers in
        bounded batches, install the heads from the *same* staged rows via
        ``staged_install_sql`` (no head values cross back into Python) and
        clear the variant's stage key — exactly the statements, counters and
        tid-assignment order of the single-connection driver.  This is what
        makes a fully-collapsed sharded closure statement-identical to
        semi-naive, which the never-slower floor in the benchmark gates on.
        """
        rule, variant, window = pending[index]
        rows = stage_variant_rows(db, variant, window, ctx)
        for batch in staged_row_batches(rows, ctx):
            for assignment in assignments_from_rows(
                rule, variant.atom_arities, batch,
            ):
                record(assignment)
        cursor = db.execute(variant.staged_install_sql, variant.bind(gen=gen))
        ctx.stats.staged_installs += 1
        db.execute(variant.stage_delete_sql, variant.bind())
        if cursor.rowcount > 0:
            relation = rule.head.relation
            new_by_relation[relation] = (
                new_by_relation.get(relation, 0) + cursor.rowcount
            )

    def direct_install(
        pending: List[Tuple[Rule, FrontierQuery, Dict[str, int]]],
        index: int,
        effs: List[int],
        gen: int,
        new_by_relation: Dict[str, int],
    ) -> None:
        """Install one non-observed variant without any row crossing into Python."""
        rule, variant, window = pending[index]
        eff = effs[index]
        installed = 0
        if eff <= 1:
            # Collapsed: the semi-naive fast path's own statement, counted
            # as such (``shard_*`` counters track only shard-partitioned
            # statements — the statement-hook tests equate the two).
            cursor = db.execute(variant.install_sql, variant.bind(gen=gen, **window))
            if cursor.rowcount > 0:
                installed = cursor.rowcount
            ctx.stats.direct_installs += 1
        else:
            for shard in range(eff):
                cursor = db.execute(
                    variant.sharded_install_sql,
                    variant.bind(nshards=eff, shard=shard, gen=gen, **window),
                )
                if cursor.rowcount > 0:
                    installed += cursor.rowcount
            ctx.stats.shard_selects += eff
            ctx.stats.shard_installs += 1
        if installed:
            relation = rule.head.relation
            new_by_relation[relation] = (
                new_by_relation.get(relation, 0) + installed
            )

    def run_round(
        pending: List[Tuple[Rule, FrontierQuery, Dict[str, int]]],
        gen: int,
        new_by_relation: Dict[str, int],
        frontier: Dict[str, int],
    ) -> None:
        """Evaluate one round's pending variants adaptively.

        Per variant, the observed extent size picks an effective shard count
        (collapse); per execution form, either a *direct install* (no rows in
        Python) or a gather + merge runs.  With reader connections the waves
        are pipelined: variant ``k+1``'s SELECTs are submitted as soon as
        variant ``k``'s rows are gathered, overlapping with ``k``'s
        merge/install on the primary connection.  Merge order is the pending
        order regardless, so results and observer streams are independent of
        the overlap.
        """
        # wcoj covering indexes must exist (committed on the primary
        # connection) before any reader connection runs the variant's
        # sharded join; steady-state rounds are a no-op set lookup.
        for _rule, variant, _window in pending:
            if variant.wcoj_index_sql:
                db.ensure_wcoj_indexes(variant.wcoj_index_sql)
        if ctx.worker_count() <= 1:
            # With no pool to feed, the collapse decision is size-independent
            # (:func:`effective_shard_count` ignores the extent when
            # ``workers <= 1``), so skip the per-variant extent probes — on
            # the file backend each one is a COUNT scan per variant per
            # round, and the never-slower floor has no room for them.
            effs = [ctx.effective_shards_for(0) for _ in pending]
        else:
            effs = [
                ctx.effective_shards_for(
                    variant_size(rule, variant, window, frontier),
                )
                for rule, variant, window in pending
            ]
        if pending and all(eff <= 1 for eff in effs):
            ctx.stats.collapsed_rounds += 1
        handle: _WaveHandle | None = None
        try:
            if pending:
                handle = submit(pending, 0, effs)
            for index in range(len(pending)):
                current, handle = handle, None
                rows = (
                    gather(pending, index, effs, current)
                    if merges(index, effs)
                    else None
                )
                if index + 1 < len(pending):
                    # Pipelining: the next wave streams on the readers while
                    # the primary connection merges/installs this variant.
                    handle = submit(pending, index + 1, effs)
                    if handle is not None:
                        ctx.stats.pipelined_waves += 1
                if rows is not None:
                    merge_one(pending, index, rows, gen, new_by_relation)
                elif observing and effs[index] <= 1:
                    staged_inline(pending, index, gen, new_by_relation)
                else:
                    direct_install(pending, index, effs, gen, new_by_relation)
        except BaseException:
            if handle is not None:
                handle.abandon()
            raise

    rounds = 0

    def enter_round() -> None:
        nonlocal rounds
        rounds += 1
        if max_rounds is not None and rounds > max_rounds:
            raise EvaluationError(
                f"closure did not converge within {max_rounds} rounds",
            )

    # Round 1: every rule's full variant, sharded on its first body atom.
    enter_round()
    hi = db.generation()
    gen = db.next_generation()
    new_by_relation: Dict[str, int] = {}
    pending = []
    for rule in rules:
        full, _ = _sql_variants(rule, ctx)
        pending.append((rule, full, {"hi": hi}))
    run_round(pending, gen, new_by_relation, {})
    for relation in new_by_relation:
        db.execute(copy_statements[relation], {"gen": gen})

    # Rounds 2..: the seeded variants of the previous round's frontier window.
    while any(new_by_relation.get(relation) for relation in watched):
        enter_round()
        lo, hi = hi, gen
        gen = db.next_generation()
        frontier = new_by_relation
        new_by_relation = {}
        pending = []
        for rule in delta_rules:
            _, seeded = _sql_variants(rule, ctx)
            for variant in seeded:
                if not frontier.get(variant.seed_relation):
                    continue
                pending.append((rule, variant, {"lo": lo, "hi": hi}))
        if pending:
            run_round(pending, gen, new_by_relation, frontier)
        for relation in new_by_relation:
            db.execute(copy_statements[relation], {"gen": gen})

    return ClosureResult(all_assignments, rounds, ENGINE_SHARDED)


# ---------------------------------------------------------------------------
# In-memory driver
# ---------------------------------------------------------------------------


def _full_rule_shard(
    db: BaseDatabase, planner, rule: Rule, first: int, seeds: List[Fact],
) -> List[Assignment]:
    """One shard of a rule's full (round-1) evaluation.

    The partition axis is the first atom of the rule's cached plan: every
    assignment extends exactly one candidate fact of that atom, so
    restricting the first atom to one hash partition of its candidates
    (``seeds``, pre-partitioned on the merge thread) partitions the full
    result set.  Module-level so the process-pool workers
    (:mod:`repro.datalog.process_pool`) evaluate the exact same code against
    their database replica.
    """
    plan = planner.plan(rule, seed=None)
    if plan.kind != "binary":
        from repro.datalog.wcoj import wcoj_eligible, wcoj_seeded_assignments

        if wcoj_eligible(db, plan):
            # Same partition axis: the generic join unifies the first
            # planned atom with each of this shard's candidate facts and
            # intersects the remaining variables outward.
            return wcoj_seeded_assignments(
                db, rule, plan, first, seeds, stats=planner.stats,
            )
    base = default_candidates(db, False)

    def candidates_for(index: int, atom, fixed):
        if index == first:
            return seeds
        return base(index, atom, fixed)

    results: List[Assignment] = []
    planned_search(rule, plan.order, 0, {}, [], set(), results, candidates_for)
    return results


def memory_sharded_closure(
    db: BaseDatabase,
    program: Program | Iterable[Rule],
    on_assignment=None,
    max_rounds: int | None = None,
    planner=None,
    collect_assignments: bool = True,
    context: EvalContext | None = None,
) -> ClosureResult:
    """Sharded counterpart of :func:`~repro.datalog.seminaive.semi_naive_closure`.

    The storage layer's frontier tokens, the stage-style rounds and the
    round-boundary plan re-costing are untouched; only the per-round
    enumeration is partitioned.  Round 1 partitions each rule's first planned
    atom's candidate facts by hash; later rounds partition each delta rank's
    frontier seed facts.  Workers read the shared indexes concurrently (no
    writes happen during a wave — deletions are applied at round end, exactly
    like the single-threaded engine) and the merge thread records the
    per-shard results in (rule, rank, shard) order, preserving the
    exactly-once observer contract.
    """
    from repro.datalog.seminaive import (
        Frontier,
        delta_body_positions,
        seeded_rank_assignments,
    )

    ctx = context if context is not None else EvalContext()
    nshards = ctx.shard_count()
    workers = ctx.worker_count()
    rules = list(program)
    if planner is None:
        planner = ctx.planner(db)
    delta_rules = [rule for rule in rules if any(atom.is_delta for atom in rule.body)]
    relations = sorted(
        {atom.relation for rule in delta_rules for atom in rule.body if atom.is_delta},
    )
    tokens = {relation: db.delta_token(relation) for relation in relations}
    watching_candidates = (
        ctx.has_candidate_observers and hasattr(db, "add_candidate_observer")
    )
    if watching_candidates:
        db.add_candidate_observer(ctx.notify_candidate)

    all_assignments: List[Assignment] = []
    seen_signatures: set[tuple] = set()
    derived_now: List[Fact] = []

    def record(assignment: Assignment) -> None:
        signature = assignment.signature()
        if signature in seen_signatures:
            return
        seen_signatures.add(signature)
        if collect_assignments:
            all_assignments.append(assignment)
        if on_assignment is not None:
            on_assignment(assignment)
        ctx.notify(assignment)
        derived_now.append(assignment.derived)

    rounds = 0

    def enter_round() -> None:
        nonlocal rounds
        rounds += 1
        if max_rounds is not None and rounds > max_rounds:
            raise EvaluationError(
                f"closure did not converge within {max_rounds} rounds",
            )

    pool = None
    if ctx.wants_process_pool() and workers > 1 and not watching_candidates:
        # Candidate observers are probe-level hooks on the parent database's
        # indexes; process workers probe their own replica, so the stream
        # would be lost — fall back to the thread pool for those runs.
        from repro.datalog.process_pool import ProcessShardPool

        pool = ProcessShardPool.create(db, rules, workers)
    rule_index_of = {id(rule): index for index, rule in enumerate(rules)}
    #: Per-round ``mark_deleted`` batches, in record order: process workers
    #: replay the unapplied suffix to bring their replica up to date before
    #: evaluating a wave (see :meth:`ProcessShardPool.run_wave`).
    history: List[List[Fact]] = []

    def run_jobs(
        jobs: List[Callable[[], List[Assignment]]],
        descriptors: List[tuple],
        effs: List[int],
        frontier_payload: tuple,
    ) -> List[List[Assignment]]:
        """Execute one round's shard jobs: inline, thread pool or process pool.

        A round whose every variant collapsed (``eff <= 1`` throughout) runs
        inline on the merge thread — zero pool submits, zero pool leases —
        and counts a :attr:`~repro.datalog.context.QueryStats.collapsed_rounds`.
        """
        if not jobs:
            return []
        if all(eff <= 1 for eff in effs):
            ctx.stats.collapsed_rounds += 1
            return [job() for job in jobs]
        if pool is not None:
            return pool.run_wave(history, frontier_payload, descriptors)
        return _run_wave(jobs, workers)

    try:
        # Round 1: full evaluation of every rule, hash-partitioned on the
        # first planned atom.  Plans are built — and the first atom's
        # candidates enumerated and partitioned — on the merge thread before
        # the wave is submitted: workers never mutate the shared plan cache,
        # the partition axis is scanned exactly once per rule (not once per
        # shard), and candidate observers see each probed fact exactly as
        # often as the single-threaded engine would.
        enter_round()
        round_one_jobs: List[Callable[[], List[Assignment]]] = []
        descriptors: List[tuple] = []
        effs: List[int] = []
        for rule in rules:
            plan = planner.plan(rule, seed=None)
            first = plan.order[0]
            first_atom = rule.body[first]
            first_fixed = _bound_positions(first_atom, {})
            candidates = list(
                db.candidates(
                    first_atom.relation, first_fixed, delta=first_atom.is_delta
                ),
            )
            eff = ctx.effective_shards_for(len(candidates))
            effs.append(eff)
            partitions = partition_facts(candidates, eff)
            for shard in range(eff):
                round_one_jobs.append(
                    lambda r=rule, f=first, seeds=partitions[
                        shard
                    ]: _full_rule_shard(db, planner, r, f, seeds),
                )
                descriptors.append(
                    ("full", rule_index_of[id(rule)], first, partitions[shard]),
                )
        wave = run_jobs(round_one_jobs, descriptors, effs, ())
        for results in wave:
            for assignment in sorted(results, key=_assignment_order):
                record(assignment)
        for item in derived_now:
            db.mark_deleted(item)
        history.append(derived_now)

        # Rounds 2..: partition each (rule, rank)'s frontier seeds by hash.
        while True:
            frontier: Frontier = {}
            for relation in relations:
                added = db.delta_added_since(relation, tokens[relation])
                tokens[relation] = db.delta_token(relation)
                if added:
                    frontier[relation] = set(added)
            if not frontier:
                break
            enter_round()
            planner.begin_round()
            derived_now = []
            jobs: List[Callable[[], List[Assignment]]] = []
            descriptors = []
            effs = []
            for rule in delta_rules:
                for rank, seed_index in enumerate(delta_body_positions(rule)):
                    seed_facts = frontier.get(rule.body[seed_index].relation)
                    if not seed_facts:
                        continue
                    planner.plan(rule, seed=seed_index)
                    eff = ctx.effective_shards_for(len(seed_facts))
                    effs.append(eff)
                    partitions = partition_facts(seed_facts, eff)
                    for shard in range(eff):
                        if not partitions[shard]:
                            continue
                        jobs.append(
                            lambda r=rule, k=rank, i=seed_index, seeds=partitions[
                                shard
                            ]: seeded_rank_assignments(
                                db, r, frontier, planner, k, i, seeds
                            ),
                        )
                        descriptors.append(
                            (
                                "rank",
                                rule_index_of[id(rule)],
                                rank,
                                seed_index,
                                partitions[shard],
                            ),
                        )
            frontier_payload = tuple(
                (relation, list(items)) for relation, items in frontier.items()
            )
            for results in run_jobs(jobs, descriptors, effs, frontier_payload):
                for assignment in sorted(results, key=_assignment_order):
                    record(assignment)
            for item in derived_now:
                db.mark_deleted(item)
            history.append(derived_now)
    finally:
        if pool is not None:
            pool.close()
        if watching_candidates:
            db.remove_candidate_observer(ctx.notify_candidate)

    return ClosureResult(all_assignments, rounds, ENGINE_SHARDED)


def sharded_closure(
    db: BaseDatabase,
    program: Program | Iterable[Rule],
    on_assignment=None,
    max_rounds: int | None = None,
    collect_assignments: bool = True,
    context: EvalContext | None = None,
) -> ClosureResult:
    """Backend dispatch: the sharded driver matching ``db``'s storage engine."""
    if isinstance(db, SQLiteDatabase):
        return sql_sharded_closure(
            db,
            program,
            on_assignment=on_assignment,
            max_rounds=max_rounds,
            collect_assignments=collect_assignments,
            context=context,
        )
    return memory_sharded_closure(
        db,
        program,
        on_assignment=on_assignment,
        max_rounds=max_rounds,
        collect_assignments=collect_assignments,
        context=context,
    )
