"""Sharded parallel fixpoint evaluation: hash-partitioned frontiers.

The semi-naive engines (:mod:`repro.datalog.seminaive`,
:mod:`repro.datalog.sql_seminaive`) enumerate each round's whole frontier on
one thread — and, on SQLite, one connection.  The drivers in this module keep
the exact round structure, generation stamping, exactly-once observer
delivery and :class:`~repro.datalog.context.QueryStats` accounting of those
engines, but **partition every round's work by a hash of the seed fact** and
fan the per-shard join enumeration out across a persistent worker-thread
pool:

* **SQLite** (:func:`sql_sharded_closure`): every compiled rule variant
  carries sharded execution forms
  (:attr:`~repro.datalog.sql_compiler.FrontierQuery.sharded_sql` /
  :attr:`~repro.datalog.sql_compiler.FrontierQuery.sharded_heads_sql`) whose
  shard predicate partitions the seed atom's table by ``rowid % nshards``.
  On a file-backed WAL database the per-shard SELECTs run concurrently on
  read-only sibling connections
  (:meth:`~repro.storage.sqlite_backend.SQLiteDatabase.reader_connections`)
  — CPython's sqlite3 module releases the GIL while stepping, so the joins
  genuinely overlap on multi-core machines — while the **primary connection
  serialises only the installs** (``INSERT OR IGNORE`` executemany over the
  merged shard rows) and the delta copies.  In-memory SQLite databases have
  no second connection to offer, so their shards run sequentially on the
  primary connection (same results, same accounting).
* **in-memory** (:func:`memory_sharded_closure`): the round's frontier seeds
  (and, in round 1, the first planned atom's candidates) are hash-partitioned
  across workers; each worker enumerates its partition over the shared
  read-only indexes with the same per-rule plans, and the merge thread
  replays the per-shard results in a fixed order.

Determinism and equivalence
---------------------------

Shard execution may interleave arbitrarily, but workers only *read*: all
installs happen on the merge thread, strictly after every shard of the wave
returned, in a fixed (rule, variant/rank, shard-index) order.  The derived
delta fixpoint, the assignment set, the round count and the exactly-once
observer stream are therefore identical to the single-threaded semi-naive
engines — the differential suites check this against the naive oracle at
several shard counts, and a dedicated test pins the closure against shard /
worker permutations.

The shard and worker counts come from the
:class:`~repro.datalog.context.EvalContext` knobs (``shards=`` /
``workers=``, or the ``REPRO_SHARDS`` environment override); with
``shards=1`` the drivers degenerate to a single partition of the same
machinery.
"""

from __future__ import annotations

import threading
import zlib
from concurrent.futures import ThreadPoolExecutor, wait as futures_wait
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from repro.datalog.ast import Program, Rule
from repro.datalog.context import EvalContext
from repro.datalog.evaluation import (
    Assignment,
    ClosureResult,
    ENGINE_SHARDED,
    _bound_positions,
    default_candidates,
    planned_search,
)
from repro.datalog.sql_compiler import (
    FrontierQuery,
    assignments_from_rows,
    compile_frontier_rule,
    delta_copy_sql,
)
from repro.exceptions import EvaluationError
from repro.storage.database import BaseDatabase
from repro.storage.facts import Fact
from repro.storage.sqlite_backend import SQLiteDatabase

# ---------------------------------------------------------------------------
# Persistent worker pool
# ---------------------------------------------------------------------------

_pool_lock = threading.Lock()
_pool: ThreadPoolExecutor | None = None
_pool_size = 0
# Wave leases per pool: a retired pool (replaced by a larger one) is only shut
# down once its last leased wave drained — a concurrent closure that picked the
# pool up before the swap keeps submitting to a live executor instead of
# hitting "cannot schedule new futures after shutdown".
_pool_leases: Dict[ThreadPoolExecutor, int] = {}


def _ensure_pool(workers: int) -> ThreadPoolExecutor:
    """Grow the shared pool to ``workers`` threads.  Caller holds ``_pool_lock``."""
    global _pool, _pool_size
    if _pool is None or _pool_size < workers:
        previous = _pool
        _pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-shard",
        )
        _pool_size = workers
        if previous is not None and not _pool_leases.get(previous):
            # No wave holds a lease on the old pool: the idle threads can exit
            # now instead of leaking for the process lifetime.  A leased pool
            # is shut down by the last _release_pool instead.
            previous.shutdown(wait=False)
    return _pool


def worker_pool(workers: int) -> ThreadPoolExecutor:
    """The process-wide persistent worker pool, grown to ``workers`` threads.

    One pool serves every sharded closure of the process (threads are
    recycled across rounds, runs and databases); asking for more workers than
    the pool currently has replaces it with a larger one.  Worker threads
    only ever *read* the database being evaluated, so sharing the pool across
    concurrent closures is safe; the pool size is only an upper bound — each
    wave caps its own concurrency at the run's ``workers`` knob (see
    :func:`_run_wave`).  Waves acquire the pool through a per-wave lease
    (:func:`_acquire_pool` / :func:`_release_pool`): when a concurrent
    closure grows the pool mid-run, the retired executor stays alive until
    the last wave holding it drains, then shuts down.
    """
    with _pool_lock:
        return _ensure_pool(workers)


def _acquire_pool(workers: int) -> ThreadPoolExecutor:
    """Lease the shared pool (grown to ``workers``) for one wave."""
    with _pool_lock:
        pool = _ensure_pool(workers)
        _pool_leases[pool] = _pool_leases.get(pool, 0) + 1
        return pool


def _release_pool(pool: ThreadPoolExecutor) -> None:
    """Return a wave's lease; shut the pool down if it was retired meanwhile."""
    with _pool_lock:
        remaining = _pool_leases.get(pool, 0) - 1
        if remaining > 0:
            _pool_leases[pool] = remaining
            return
        _pool_leases.pop(pool, None)
        if pool is not _pool:
            pool.shutdown(wait=False)


def _assignment_order(assignment: Assignment) -> tuple:
    """Canonical in-shard replay order for one job's assignments.

    Workers enumerate joins over hash-based indexes, whose iteration order is
    salted for strings (``PYTHONHASHSEED``): replaying each shard's results in
    enumeration order would deliver a process-dependent observer stream even
    though the merged *set* is deterministic.  Sorting every job's results by
    the used facts (one rule per job, so the tuples are comparable) makes the
    full delivery stream reproducible across processes.
    """
    return tuple(
        (atom.relation, atom.is_delta, item.sort_key())
        for atom, item in assignment.used
    )


#: Public name of the canonical per-job replay order — the incremental
#: maintenance drivers sort *both* their serial and their sharded record
#: streams with it, which is what makes sharded maintenance byte-identical
#: to the serial drivers at any shard/worker count.
def assignment_replay_order(assignment: Assignment) -> tuple:
    """Alias of :func:`_assignment_order` for out-of-module callers."""
    return _assignment_order(assignment)


def fact_shard(item: Fact, nshards: int) -> int:
    """The hash partition of ``item`` among ``nshards`` shards (in-memory).

    The hash is a CRC-32 fold over a typed canonical encoding of the fact's
    relation and values — **stable across processes and interpreter runs**,
    unlike the builtin ``hash()``, which salts strings per process
    (``PYTHONHASHSEED``).  Routing must not depend on the process: file-backed
    resumes and CI-seed replays reproduce the exact tid and observer streams
    only if every process deals the same fact to the same shard.  Tids are
    ignored, matching :class:`~repro.storage.facts.Fact` equality; values are
    tagged with their type name so e.g. ``1`` and ``"1"`` hash apart, and the
    SQLite path is unaffected (it partitions by ``rowid % :nshards`` inside
    the database).
    """
    digest = zlib.crc32(item.relation.encode("utf-8"))
    for value in item.values:
        encoded = f"{type(value).__name__}:{value!r};".encode("utf-8")
        digest = zlib.crc32(encoded, digest)
    return digest % nshards


def partition_facts(items: Iterable[Fact], nshards: int) -> List[List[Fact]]:
    """Deal ``items`` into their :func:`fact_shard` partitions.

    The shared partitioning step of the in-memory sharded closure and the
    sharded maintenance drivers: each returned list holds one shard's facts
    in the input's iteration order, and the concatenation over shards is a
    permutation of the input.
    """
    partitions: List[List[Fact]] = [[] for _ in range(nshards)]
    for item in items:
        partitions[fact_shard(item, nshards)].append(item)
    return partitions


def _run_wave(
    jobs: Sequence[Callable[[], object]], workers: int,
) -> List[object]:
    """Run one wave of shard jobs, returning results in job order.

    Concurrency is capped at ``workers`` regardless of the shared pool's
    size: the jobs are dealt round-robin into at most ``workers`` slices and
    each slice runs sequentially inside one submitted task, so a run
    configured with ``workers=2`` never executes more than two jobs at once
    even after an earlier run grew the pool.  With one worker (or one job)
    the jobs run inline on the calling thread — no pool overhead, still the
    exact same code path.
    """
    if workers <= 1 or len(jobs) <= 1:
        return [job() for job in jobs]
    pool = _acquire_pool(workers)
    try:
        slices = [
            list(range(start, len(jobs), workers))
            for start in range(min(workers, len(jobs)))
        ]

        def run_slice(indices: List[int]) -> List[tuple]:
            return [(index, jobs[index]()) for index in indices]

        results: List[object] = [None] * len(jobs)
        futures = [pool.submit(run_slice, chunk) for chunk in slices]
        try:
            for future in futures:
                for index, result in future.result():
                    results[index] = result
        except BaseException:
            # A failing slice must not propagate while sibling slices still
            # execute: the memory driver's ``finally`` would detach candidate
            # observers under live workers, and the released pool lease could
            # shut the executor down beneath them.  Cancel what has not
            # started and drain what has before re-raising.
            for future in futures:
                future.cancel()
            futures_wait(futures)
            raise
        return results
    finally:
        _release_pool(pool)


# ---------------------------------------------------------------------------
# SQLite driver
# ---------------------------------------------------------------------------


def _sql_variants(rule: Rule, context: EvalContext | None):
    if context is not None:
        return context.frontier_variants(rule)
    return compile_frontier_rule(rule)


def sql_sharded_closure(
    db: SQLiteDatabase,
    program: Program | Iterable[Rule],
    on_assignment=None,
    max_rounds: int | None = None,
    collect_assignments: bool = True,
    context: EvalContext | None = None,
) -> ClosureResult:
    """Sharded counterpart of :func:`~repro.datalog.sql_seminaive.sql_semi_naive_closure`.

    Same rounds, same generation stamping (one fresh generation per round,
    delta copies promoting it), same observer contract.  Each round runs in
    two phases: a read-only *shard wave* — every pending variant's join,
    split into ``nshards`` partitions, executed on reader connections by the
    worker pool (or on the primary connection when the database is in-memory
    or a single worker is configured) — and a serial *merge* on the primary
    connection that replays the rows in fixed order and installs the derived
    head facts.  Without observers only the deduplicated head rows cross into
    Python; with observers the full assignment rows do (they must — observers
    consume them).
    """
    ctx = context if context is not None else EvalContext()
    nshards = ctx.shard_count()
    workers = ctx.worker_count()
    rules = list(program)
    delta_rules = [rule for rule in rules if any(atom.is_delta for atom in rule.body)]
    watched = {
        atom.relation for rule in delta_rules for atom in rule.body if atom.is_delta
    }
    copy_statements = {
        rule.head.relation: delta_copy_sql(rule.head.relation, rule.head.arity)
        for rule in rules
    }
    observing = (collect_assignments or on_assignment is not None or ctx.has_observers)
    readers = db.reader_connections(workers) if workers > 1 else None

    all_assignments: List[Assignment] = []
    seen_signatures: set[tuple] = set()

    def record(assignment: Assignment) -> None:
        signature = assignment.signature()
        if signature in seen_signatures:
            return
        seen_signatures.add(signature)
        if collect_assignments:
            all_assignments.append(assignment)
        if on_assignment is not None:
            on_assignment(assignment)
        ctx.notify(assignment)

    def shard_wave(
        pending: List[Tuple[Rule, FrontierQuery, Dict[str, int]]],
    ) -> List[List[tuple]]:
        """Run every pending variant's join across all shards; per-variant rows.

        Phase 1 of a round: read-only.  Each worker owns a slice of the shard
        indices and one reader connection, runs every variant's sharded
        SELECT for its shards (``sharded_heads_sql`` on the fast path,
        ``sharded_sql`` when observers need assignment rows) and fetches the
        rows.  The merge thread concatenates per variant in shard order, so
        downstream processing is deterministic regardless of worker
        interleaving, and replays the executed statements to the statement
        hooks from a single thread.
        """
        select_sql = [
            (variant.sharded_sql if observing else variant.sharded_heads_sql)
            for _, variant, _ in pending
        ]

        def job(slot: int, shard_indices: List[int]):
            connection = readers[slot] if readers is not None else None
            results: Dict[Tuple[int, int], list] = {}
            for shard in shard_indices:
                for index, (_, variant, window) in enumerate(pending):
                    bind = variant.bind(nshards=nshards, shard=shard, **window)
                    if connection is not None:
                        cursor = connection.execute(select_sql[index], bind)
                        results[(index, shard)] = cursor.fetchall()
                    else:
                        results[(index, shard)] = db.execute(
                            select_sql[index], bind,
                        ).fetchall()
            return results

        if readers is not None:
            slices = [list(range(slot, nshards, workers)) for slot in range(workers)]
            slices = [chunk for chunk in slices if chunk]
            waves = _run_wave(
                [
                    (lambda s=slot, c=chunk: job(s, c))
                    for slot, chunk in enumerate(slices)
                ],
                workers,
            )
            by_key: Dict[Tuple[int, int], list] = {}
            for result in waves:
                by_key.update(result)
            # Reader connections bypass ``db.execute``; replay the statements
            # to the hooks from the merge thread so counters stay coherent.
            for index in range(len(pending)):
                for _ in range(nshards):
                    db.notify_statement_hooks(select_sql[index])
        else:
            by_key = job(0, list(range(nshards)))
        ctx.stats.shard_selects += len(pending) * nshards
        # Per-variant, per-shard row lists: the merge consumes them one shard
        # batch at a time, never concatenating a round's rows into one list.
        # The per-shard lists themselves are the parallel-prefetch buffers —
        # that materialisation is what lets the SELECTs overlap; callers who
        # need bounded memory run the fast path (head rows only) instead.
        return [
            [by_key[(index, shard)] for shard in range(nshards)]
            for index in range(len(pending))
        ]

    def merge_and_install(
        pending: List[Tuple[Rule, FrontierQuery, Dict[str, int]]],
        per_variant_rows: List[List[list]],
        gen: int,
        new_by_relation: Dict[str, int],
    ) -> None:
        """Phase 2 of a round: serial, on the primary connection.

        Replays assignment rows to the observers (staged path, one shard
        batch at a time, in shard order) and installs the derived head facts
        with this round's generation stamp.  The install is an ``INSERT OR
        IGNORE`` executemany keyed on the value columns, so re-derived facts
        keep their first-arrival generation exactly like the in-SQL installs
        — and the number of *new* rows (measured via ``total_changes``)
        drives the next round's frontier test, mirroring the
        single-connection driver's change counts.
        """
        for (rule, variant, _window), shard_rows in zip(pending, per_variant_rows):
            if observing:
                heads = {
                    variant.head_values(row)
                    for batch in shard_rows
                    for row in batch
                }
                for batch in shard_rows:
                    for assignment in assignments_from_rows(
                        rule, variant.atom_arities, batch,
                    ):
                        record(assignment)
            else:
                heads = {row for batch in shard_rows for row in batch}
            if heads:
                before = db.connection.total_changes
                # One transaction per batch: the connection runs in autocommit
                # mode, where executemany would otherwise commit every row —
                # per-commit WAL bookkeeping dwarfs the insert itself.
                db.connection.execute("BEGIN")
                try:
                    # Sorted batch order: head values are the table's primary
                    # key so no two rows collide, but the *rowids* assigned
                    # here become the shard axis of later rounds' partitioned
                    # SELECTs — set order is salted for strings, sorted order
                    # reproduces identical routing across processes.
                    db.connection.executemany(
                        variant.head_insert_sql,
                        [(*head, gen) for head in sorted(heads, key=repr)],
                    )
                    db.connection.execute("COMMIT")
                except BaseException:
                    db.connection.execute("ROLLBACK")
                    raise
                installed = db.connection.total_changes - before
                db.notify_statement_hooks(variant.head_insert_sql)
                ctx.stats.shard_installs += 1
                if installed > 0:
                    relation = rule.head.relation
                    new_by_relation[relation] = (
                        new_by_relation.get(relation, 0) + installed
                    )

    def run_round(
        pending: List[Tuple[Rule, FrontierQuery, Dict[str, int]]],
        gen: int,
        new_by_relation: Dict[str, int],
    ) -> None:
        """Evaluate one round's pending variants across all shards.

        Two execution strategies, same results:

        * **sequential fast path** (no observers, no reader connections): the
          primary connection runs each variant's ``sharded_install_sql`` per
          shard — the partitioned join and the install are one statement, no
          row crosses into Python, exactly like the single-connection fast
          path but in ``nshards`` slices;
        * otherwise a shard wave gathers the rows (concurrently when readers
          exist) and the merge thread installs them.
        """
        # wcoj covering indexes must exist (committed on the primary
        # connection) before any reader connection runs the variant's
        # sharded join; steady-state rounds are a no-op set lookup.
        for _rule, variant, _window in pending:
            if variant.wcoj_index_sql:
                db.ensure_wcoj_indexes(variant.wcoj_index_sql)
        if not observing and readers is None:
            for rule, variant, window in pending:
                installed = 0
                for shard in range(nshards):
                    cursor = db.execute(
                        variant.sharded_install_sql,
                        variant.bind(nshards=nshards, shard=shard, gen=gen, **window),
                    )
                    if cursor.rowcount > 0:
                        installed += cursor.rowcount
                ctx.stats.shard_selects += nshards
                ctx.stats.shard_installs += 1
                if installed:
                    relation = rule.head.relation
                    new_by_relation[relation] = (
                        new_by_relation.get(relation, 0) + installed
                    )
        else:
            merge_and_install(pending, shard_wave(pending), gen, new_by_relation)

    rounds = 0

    def enter_round() -> None:
        nonlocal rounds
        rounds += 1
        if max_rounds is not None and rounds > max_rounds:
            raise EvaluationError(
                f"closure did not converge within {max_rounds} rounds",
            )

    # Round 1: every rule's full variant, sharded on its first body atom.
    enter_round()
    hi = db.generation()
    gen = db.next_generation()
    new_by_relation: Dict[str, int] = {}
    pending = []
    for rule in rules:
        full, _ = _sql_variants(rule, ctx)
        pending.append((rule, full, {"hi": hi}))
    run_round(pending, gen, new_by_relation)
    for relation in new_by_relation:
        db.execute(copy_statements[relation], {"gen": gen})

    # Rounds 2..: the seeded variants of the previous round's frontier window.
    while any(new_by_relation.get(relation) for relation in watched):
        enter_round()
        lo, hi = hi, gen
        gen = db.next_generation()
        frontier = new_by_relation
        new_by_relation = {}
        pending = []
        for rule in delta_rules:
            _, seeded = _sql_variants(rule, ctx)
            for variant in seeded:
                if not frontier.get(variant.seed_relation):
                    continue
                pending.append((rule, variant, {"lo": lo, "hi": hi}))
        if pending:
            run_round(pending, gen, new_by_relation)
        for relation in new_by_relation:
            db.execute(copy_statements[relation], {"gen": gen})

    return ClosureResult(all_assignments, rounds, ENGINE_SHARDED)


# ---------------------------------------------------------------------------
# In-memory driver
# ---------------------------------------------------------------------------


def memory_sharded_closure(
    db: BaseDatabase,
    program: Program | Iterable[Rule],
    on_assignment=None,
    max_rounds: int | None = None,
    planner=None,
    collect_assignments: bool = True,
    context: EvalContext | None = None,
) -> ClosureResult:
    """Sharded counterpart of :func:`~repro.datalog.seminaive.semi_naive_closure`.

    The storage layer's frontier tokens, the stage-style rounds and the
    round-boundary plan re-costing are untouched; only the per-round
    enumeration is partitioned.  Round 1 partitions each rule's first planned
    atom's candidate facts by hash; later rounds partition each delta rank's
    frontier seed facts.  Workers read the shared indexes concurrently (no
    writes happen during a wave — deletions are applied at round end, exactly
    like the single-threaded engine) and the merge thread records the
    per-shard results in (rule, rank, shard) order, preserving the
    exactly-once observer contract.
    """
    from repro.datalog.seminaive import (
        Frontier,
        delta_body_positions,
        seeded_rank_assignments,
    )

    ctx = context if context is not None else EvalContext()
    nshards = ctx.shard_count()
    workers = ctx.worker_count()
    rules = list(program)
    if planner is None:
        planner = ctx.planner(db)
    delta_rules = [rule for rule in rules if any(atom.is_delta for atom in rule.body)]
    relations = sorted(
        {atom.relation for rule in delta_rules for atom in rule.body if atom.is_delta},
    )
    tokens = {relation: db.delta_token(relation) for relation in relations}
    watching_candidates = (
        ctx.has_candidate_observers and hasattr(db, "add_candidate_observer")
    )
    if watching_candidates:
        db.add_candidate_observer(ctx.notify_candidate)

    all_assignments: List[Assignment] = []
    seen_signatures: set[tuple] = set()
    derived_now: List[Fact] = []

    def record(assignment: Assignment) -> None:
        signature = assignment.signature()
        if signature in seen_signatures:
            return
        seen_signatures.add(signature)
        if collect_assignments:
            all_assignments.append(assignment)
        if on_assignment is not None:
            on_assignment(assignment)
        ctx.notify(assignment)
        derived_now.append(assignment.derived)

    rounds = 0

    def enter_round() -> None:
        nonlocal rounds
        rounds += 1
        if max_rounds is not None and rounds > max_rounds:
            raise EvaluationError(
                f"closure did not converge within {max_rounds} rounds",
            )

    def full_rule_shard(
        rule: Rule, first: int, seeds: List[Fact],
    ) -> List[Assignment]:
        """One shard of a rule's full (round-1) evaluation.

        The partition axis is the first atom of the rule's cached plan: every
        assignment extends exactly one candidate fact of that atom, so
        restricting the first atom to one hash partition of its candidates
        (``seeds``, pre-partitioned on the merge thread) partitions the full
        result set.
        """
        plan = planner.plan(rule, seed=None)
        if plan.kind != "binary":
            from repro.datalog.wcoj import wcoj_eligible, wcoj_seeded_assignments

            if wcoj_eligible(db, plan):
                # Same partition axis: the generic join unifies the first
                # planned atom with each of this shard's candidate facts and
                # intersects the remaining variables outward.
                return wcoj_seeded_assignments(
                    db, rule, plan, first, seeds, stats=planner.stats,
                )
        base = default_candidates(db, False)

        def candidates_for(index: int, atom, fixed):
            if index == first:
                return seeds
            return base(index, atom, fixed)

        results: List[Assignment] = []
        planned_search(rule, plan.order, 0, {}, [], set(), results, candidates_for)
        return results

    try:
        # Round 1: full evaluation of every rule, hash-partitioned on the
        # first planned atom.  Plans are built — and the first atom's
        # candidates enumerated and partitioned — on the merge thread before
        # the wave is submitted: workers never mutate the shared plan cache,
        # the partition axis is scanned exactly once per rule (not once per
        # shard), and candidate observers see each probed fact exactly as
        # often as the single-threaded engine would.
        enter_round()
        round_one_jobs = []
        for rule in rules:
            plan = planner.plan(rule, seed=None)
            first = plan.order[0]
            first_atom = rule.body[first]
            first_fixed = _bound_positions(first_atom, {})
            partitions = partition_facts(
                db.candidates(
                    first_atom.relation, first_fixed, delta=first_atom.is_delta
                ),
                nshards,
            )
            for shard in range(nshards):
                round_one_jobs.append(
                    lambda r=rule, f=first, seeds=partitions[
                        shard
                    ]: full_rule_shard(r, f, seeds),
                )
        wave = _run_wave(round_one_jobs, workers)
        for results in wave:
            for assignment in sorted(results, key=_assignment_order):
                record(assignment)
        for item in derived_now:
            db.mark_deleted(item)

        # Rounds 2..: partition each (rule, rank)'s frontier seeds by hash.
        while True:
            frontier: Frontier = {}
            for relation in relations:
                added = db.delta_added_since(relation, tokens[relation])
                tokens[relation] = db.delta_token(relation)
                if added:
                    frontier[relation] = set(added)
            if not frontier:
                break
            enter_round()
            planner.begin_round()
            derived_now = []
            jobs = []
            for rule in delta_rules:
                for rank, seed_index in enumerate(delta_body_positions(rule)):
                    seed_facts = frontier.get(rule.body[seed_index].relation)
                    if not seed_facts:
                        continue
                    planner.plan(rule, seed=seed_index)
                    partitions = partition_facts(seed_facts, nshards)
                    for shard in range(nshards):
                        if not partitions[shard]:
                            continue
                        jobs.append(
                            lambda r=rule, k=rank, i=seed_index, seeds=partitions[
                                shard
                            ]: seeded_rank_assignments(
                                db, r, frontier, planner, k, i, seeds
                            ),
                        )
            for results in _run_wave(jobs, workers):
                for assignment in sorted(results, key=_assignment_order):
                    record(assignment)
            for item in derived_now:
                db.mark_deleted(item)
    finally:
        if watching_candidates:
            db.remove_candidate_observer(ctx.notify_candidate)

    return ClosureResult(all_assignments, rounds, ENGINE_SHARDED)


def sharded_closure(
    db: BaseDatabase,
    program: Program | Iterable[Rule],
    on_assignment=None,
    max_rounds: int | None = None,
    collect_assignments: bool = True,
    context: EvalContext | None = None,
) -> ClosureResult:
    """Backend dispatch: the sharded driver matching ``db``'s storage engine."""
    if isinstance(db, SQLiteDatabase):
        return sql_sharded_closure(
            db,
            program,
            on_assignment=on_assignment,
            max_rounds=max_rounds,
            collect_assignments=collect_assignments,
            context=context,
        )
    return memory_sharded_closure(
        db,
        program,
        on_assignment=on_assignment,
        max_rounds=max_rounds,
        collect_assignments=collect_assignments,
        context=context,
    )
